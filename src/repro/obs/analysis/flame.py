"""Flame aggregation: fold span traces into deterministic folded stacks.

The folded-stack format is the ``stackcollapse`` convention consumed by
flamegraph.pl / speedscope: one ``frame;frame;frame weight`` line per
unique stack, sorted lexicographically so the file is byte-identical
run to run.  Weights are deterministic integers:

* leaf phase spans (``synapse``, ``neuron``, ``sync``, ``network``) are
  weighted by the same work units the critical-path extractor uses
  (:func:`repro.obs.analysis.critical.span_cost`); ``compute`` is a pure
  interior frame (its work lives in its children);
* instants count 1 each, nested under their enclosing window (the
  ``ts`` offset inside the tick identifies the phase window) or under
  the open ``B``/``E`` stack of their track;
* a ``B``/``E`` frame with no inner events counts 1 at close.

Track roots are ``rank N`` (or ``cluster`` for rank −1), so the
``cluster;…`` subtree — fed only by the partition-invariant cluster
track — is the subset comparable across rank counts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.obs.span import PHASES, TICK_US
from repro.perf.report import format_table

from repro.obs.analysis.critical import span_cost

#: Leaf phase windows (non-overlapping) used to classify instants by
#: their timestamp offset within the tick, with the enclosing stack.
_LEAF_WINDOWS = (
    ("synapse", ("compute", "synapse")),
    ("neuron", ("compute", "neuron")),
    ("sync", ("sync",)),
    ("network", ("network",)),
)

#: X-span names folded as leaves (self work) under their parent chain.
_LEAF_SPANS = {
    "synapse": ("compute", "synapse"),
    "neuron": ("compute", "neuron"),
    "sync": ("sync",),
    "network": ("network",),
}


def _root(rank: int) -> str:
    return "cluster" if rank < 0 else f"rank {rank}"


def _window_chain(ts: float) -> tuple[str, ...]:
    """Phase chain of the leaf window containing simulated time ``ts``."""
    frac = (ts % TICK_US) / TICK_US
    for name, chain in _LEAF_WINDOWS:
        lo, hi = PHASES[name]
        if lo <= frac < hi:
            return chain
    return ("network",)  # the final sequence slot clamps to the tick end


def fold_stacks(events: list[dict[str, Any]]) -> dict[str, int]:
    """Fold an event-record stream into ``{stack_path: weight}``.

    ``cluster;tick;<metric>`` leaves carry the partition-invariant tick
    summary totals; everything else hangs under its ``rank N`` root.
    ``omp-thread`` spans are skipped — they re-partition work the
    ``compute`` children already account for.
    """
    folded: dict[str, int] = {}
    # Per-track stack of open B frames: [name, saw_inner_events].
    stacks: dict[tuple[int, int], list[list[Any]]] = {}

    def add(parts: tuple[str, ...], weight: int) -> None:
        key = ";".join(parts)
        folded[key] = folded.get(key, 0) + weight

    for rec in events:
        name = str(rec.get("name", ""))
        ph = rec.get("ph")
        rank = int(rec.get("rank", 0))
        thread = int(rec.get("thread", 0))
        track = (rank, thread)
        args = rec.get("args") or {}
        if ph == "X":
            if rec.get("cat") == "threads":
                continue
            chain = _LEAF_SPANS.get(name)
            if chain is not None:
                add((_root(rank), *chain), span_cost(name, args))
            elif name != "compute":
                add((_root(rank), name), 1)
        elif ph == "B":
            stack = stacks.setdefault(track, [])
            if stack:
                stack[-1][1] = True
            stack.append([name, False])
        elif ph == "E":
            stack = stacks.get(track)
            if stack:
                frame_name, saw_inner = stack.pop()
                if not saw_inner:
                    names = [f[0] for f in stack]
                    add((_root(rank), *names, frame_name), 1)
        elif ph == "i":
            if rank < 0 and name == "tick":
                for metric, value in sorted(args.items()):
                    if isinstance(value, (int, float)):
                        add(("cluster", "tick", metric), int(value))
                continue
            stack = stacks.get(track)
            if stack:
                stack[-1][1] = True
                names = [f[0] for f in stack]
                add((_root(rank), *names, name), 1)
            else:
                ts = float(rec.get("ts", 0.0))
                add((_root(rank), *_window_chain(ts), name), 1)
    return folded


def folded_lines(folded: dict[str, int]) -> list[str]:
    """Sorted ``path weight`` lines — the canonical folded file content."""
    return [f"{path} {weight}" for path, weight in sorted(folded.items())]


def parse_folded(text: str) -> dict[str, int]:
    """Parse stackcollapse text back into ``{stack_path: weight}``.

    The inverse of :func:`folded_lines`, used to merge folded files from
    different producers (host-profiler stacks rooted ``host;…`` next to
    span stacks rooted ``rank N;…``).  Input errors — empty input, blank
    lines, a line without a weight, a non-integer or negative weight —
    raise the typed :class:`~repro.errors.AnalysisError` (CLI exit 2),
    never a bare ValueError.
    """
    from repro.errors import AnalysisError

    lines = text.splitlines()
    if not lines:
        raise AnalysisError("folded-stack input is empty")
    folded: dict[str, int] = {}
    for lineno, line in enumerate(lines, start=1):
        line = line.rstrip()
        if not line:
            raise AnalysisError(f"folded-stack line {lineno} is empty")
        path, sep, weight_text = line.rpartition(" ")
        if not sep or not path:
            raise AnalysisError(
                f"folded-stack line {lineno}: expected 'stack weight', "
                f"got {line!r}"
            )
        try:
            weight = int(weight_text)
        except ValueError as exc:
            raise AnalysisError(
                f"folded-stack line {lineno}: weight {weight_text!r} "
                "is not an integer"
            ) from exc
        if weight < 0:
            raise AnalysisError(
                f"folded-stack line {lineno}: weight {weight} is negative"
            )
        folded[path] = folded.get(path, 0) + weight
    return folded


def merge_folded(*folded_maps: dict[str, int]) -> dict[str, int]:
    """Sum several folded mappings into one (shared paths accumulate).

    Root frames keep producers distinguishable after the merge: host
    samples fold under ``host``, simulated work under ``rank N`` /
    ``cluster``, so one merged file diffs both sides of a run.
    """
    merged: dict[str, int] = {}
    for folded in folded_maps:
        for path, weight in sorted(folded.items()):
            merged[path] = merged.get(path, 0) + int(weight)
    return merged


def format_folded(events: list[dict[str, Any]]) -> str:
    """Folded-stack text for an event stream (trailing newline included)."""
    lines = folded_lines(fold_stacks(events))
    return "\n".join(lines) + "\n" if lines else ""


def write_folded(  # repro: obs-flush
    events: list[dict[str, Any]], path: str | Path
) -> Path:
    """Write the folded flame file; an observability flush boundary."""
    path = Path(path)
    path.write_text(format_folded(events))
    return path


def flame_table(events: list[dict[str, Any]], limit: int = 40) -> str:
    """Self/total work table over the folded stacks.

    ``self`` is the weight attributed directly to a frame path; ``total``
    additionally includes every deeper stack through it.  Rendered with
    :func:`repro.perf.report.format_table`, sorted by total (then path)
    so the table is deterministic.
    """
    folded = fold_stacks(events)
    self_w: dict[str, int] = {}
    total_w: dict[str, int] = {}
    for path, weight in sorted(folded.items()):
        self_w[path] = self_w.get(path, 0) + weight
        parts = path.split(";")
        for depth in range(1, len(parts) + 1):
            prefix = ";".join(parts[:depth])
            total_w[prefix] = total_w.get(prefix, 0) + weight

    grand = sum(folded.values()) or 1
    ranked = sorted(
        total_w.items(), key=lambda kv: (-kv[1], kv[0])
    )[:limit]
    rows = [
        (
            path,
            self_w.get(path, 0),
            total,
            f"{self_w.get(path, 0) / grand:.1%}",
            f"{total / grand:.1%}",
        )
        for path, total in ranked
    ]
    title = "== flame self/total (work units) =="
    if len(total_w) > limit:
        title += f" (top {limit} of {len(total_w)} frames)"
    return format_table(
        ["frame", "self", "total", "self%", "total%"], rows, title=title
    ) + "\n"
