"""Trace analytics: critical path, flame folding, imbalance, perf gate.

``repro.obs.analysis`` is the layer that *interprets* what the
observability layer records (see ``docs/perf_analysis.md``):

* :mod:`~repro.obs.analysis.critical` — walks each tick's phase windows
  and names the binding rank/phase per tick ("who bounded the run");
* :mod:`~repro.obs.analysis.flame` — folds spans into a deterministic
  folded-stack format plus a self/total table;
* :mod:`~repro.obs.analysis.imbalance` — per-tick max/mean heatmap data
  keyed by partition-invariant section names;
* :mod:`~repro.obs.analysis.history` — the append-only bench-history
  file keyed by git SHA + config fingerprint;
* :mod:`~repro.obs.analysis.regress` — the perf-regression gate over
  ``BENCH_*.json`` results (median/MAD with a relative-tolerance
  fallback for short histories).

Every analyzer consumes the JSONL event records of
:func:`repro.obs.jsonl.read_event_log` (or a live
:class:`~repro.obs.span.SpanTracer`), so reports are a pure function of
the deterministic event stream: two runs of one seed produce
byte-identical reports, and the sections keyed by partition-invariant
names are additionally identical across rank counts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.errors import AnalysisError
from repro.obs.jsonl import event_record, read_event_log


def require_file(path: str | Path, kind: str) -> Path:
    """Validate that ``path`` names an existing, non-empty ``kind`` file.

    The analysis CLI's analogue of ``_positive_int`` argument validation:
    a missing or empty input is a usage error (typed
    :class:`~repro.errors.AnalysisError`, exit code 2), never a traceback
    or a silently empty report.
    """
    path = Path(path)
    if not path.exists():
        raise AnalysisError(f"no such {kind} file: {path}")
    if not path.is_file():
        raise AnalysisError(f"{kind} path is not a file: {path}")
    if path.stat().st_size == 0:
        raise AnalysisError(f"{kind} file is empty: {path}")
    return path


def load_events(source: Any) -> list[dict[str, Any]]:
    """Event records from a tracer, a record list, or a JSONL log path.

    Paths are validated with :func:`require_file`; a log that parses to
    zero records is rejected the same way (nothing to analyze).
    """
    if isinstance(source, (str, Path)):
        records = read_event_log(require_file(source, "event log"))
        if not records:
            raise AnalysisError(f"event log has no records: {source}")
        return records
    if hasattr(source, "events"):  # SpanTracer / NullTracer
        return [event_record(e) for e in source.events]
    return list(source)


from repro.obs.analysis.critical import (  # noqa: E402
    CriticalPath,
    TickCritical,
    analyze_report,
    critical_path,
    format_critical_report,
    invariant_section,
)
from repro.obs.analysis.flame import (  # noqa: E402
    flame_table,
    fold_stacks,
    folded_lines,
    format_folded,
    merge_folded,
    parse_folded,
    write_folded,
)
from repro.obs.analysis.history import (  # noqa: E402
    append_history,
    load_bench_results,
    load_history,
    record_from_bench,
)
from repro.obs.analysis.imbalance import (  # noqa: E402
    ImbalanceRow,
    format_imbalance_report,
    imbalance_heatmap,
)
from repro.obs.analysis.regress import (  # noqa: E402
    GateResult,
    format_gate_report,
    gate_results,
)

__all__ = [
    "AnalysisError",
    "CriticalPath",
    "GateResult",
    "ImbalanceRow",
    "TickCritical",
    "analyze_report",
    "append_history",
    "critical_path",
    "flame_table",
    "fold_stacks",
    "folded_lines",
    "format_critical_report",
    "format_folded",
    "format_gate_report",
    "format_imbalance_report",
    "gate_results",
    "imbalance_heatmap",
    "invariant_section",
    "load_bench_results",
    "load_events",
    "load_history",
    "merge_folded",
    "parse_folded",
    "record_from_bench",
    "require_file",
    "write_folded",
]
