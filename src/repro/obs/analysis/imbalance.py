"""Per-tick load-imbalance heatmaps from span traces.

Generalizes the end-of-run max/mean factors of
:mod:`repro.core.profiling` to a *per-tick* view computed from the trace
alone: for every phase attribute the tick loop records, the max/mean
ratio across ranks at each tick.  Rows are keyed by partition-invariant
section names (``phase/metric`` — never rank ids), so heatmaps from
1-rank and 4-rank layouts of the same model are comparable row by row
even though the values legitimately differ.

Hot ticks — ticks whose imbalance is a robust outlier against the row's
own history — are flagged with :func:`repro.util.stats.robust_outlier`,
the same median/MAD machinery the perf-regression gate uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.perf.report import format_table
from repro.util.stats import max_over_mean, median, robust_outlier

#: Span attributes surfaced per phase (must be integer counts).
PHASE_METRICS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("compute", ("active_axons", "fired", "local_spikes", "remote_spikes")),
    ("sync", ("sent", "expected")),
    ("network", ("messages", "spikes_received", "bytes_received",
                 "local_delivered")),
)


@dataclass(frozen=True)
class ImbalanceRow:
    """One heatmap row: a ``phase/metric`` section across all ticks."""

    section: str
    #: (tick, max/mean ratio) in tick order.
    ticks: tuple[tuple[int, float], ...]
    #: Ticks whose ratio is a robust outlier against the row.
    hot_ticks: tuple[int, ...]

    @property
    def mean_imbalance(self) -> float:
        ratios = [r for _, r in self.ticks]
        return sum(ratios) / len(ratios) if ratios else 1.0

    @property
    def worst(self) -> tuple[int, float]:
        """(tick, ratio) of the most imbalanced tick (first on ties)."""
        if not self.ticks:
            return (-1, 1.0)
        ratio, neg_tick = max((r, -t) for t, r in self.ticks)
        return (-neg_tick, ratio)


def imbalance_heatmap(events: list[dict[str, Any]]) -> list[ImbalanceRow]:
    """Per-tick max/mean imbalance rows, one per ``phase/metric`` section.

    Sections with no recorded data (e.g. ``bytes_received`` in a trace
    without network attributes) are omitted rather than padded, so the
    row set itself stays a function of what the trace contains.
    """
    # (phase, metric, tick) -> per-rank values.
    values: dict[tuple[str, str, int], list[int]] = {}
    metric_names = dict(PHASE_METRICS)
    for rec in events:
        name = rec.get("name")
        if rec.get("ph") != "X" or name not in metric_names:
            continue
        tick = int(rec.get("tick", -1))
        args = rec.get("args") or {}
        for metric in metric_names[name]:
            value = args.get(metric)
            if isinstance(value, (int, float)):
                values.setdefault((name, metric, tick), []).append(int(value))

    series: dict[str, list[tuple[int, float]]] = {}
    for (phase, metric, tick), ranks in sorted(values.items()):
        series.setdefault(f"{phase}/{metric}", []).append(
            (tick, max_over_mean(ranks))
        )

    rows: list[ImbalanceRow] = []
    for section, ticks in sorted(series.items()):
        ratios = [r for _, r in ticks]
        hot = tuple(
            tick
            for tick, ratio in ticks
            if len(ratios) >= 4 and robust_outlier(ratio, ratios)
        )
        rows.append(ImbalanceRow(section=section, ticks=tuple(ticks),
                                 hot_ticks=hot))
    return rows


def format_imbalance_report(rows: list[ImbalanceRow]) -> str:
    """Deterministic summary table over the heatmap rows."""
    table_rows = []
    for row in rows:
        worst_tick, worst_ratio = row.worst
        ratios = [r for _, r in row.ticks]
        table_rows.append(
            (
                row.section,
                f"{row.mean_imbalance:.3f}",
                f"{median(ratios):.3f}" if ratios else "1.000",
                f"{worst_ratio:.3f}",
                worst_tick,
                len(row.hot_ticks),
            )
        )
    return format_table(
        ["section", "mean_imb", "median_imb", "worst_imb", "worst_tick",
         "hot_ticks"],
        table_rows,
        title="== per-tick imbalance (max/mean across ranks) ==",
    ) + "\n"
