"""The perf-regression gate: new bench results vs the recorded history.

For every ``BENCH_<name>.json`` result, each gated metric is compared
against the history records with the same bench name *and* config
fingerprint.  The threshold is robust — ``median + k·1.4826·MAD``,
floored at ``median·(1+rel_tol)`` — falling back to the pure relative
tolerance when the history is too short for the MAD to mean anything
(:func:`repro.util.stats.robust_outlier`).  Only regressions fail: all
gated metrics are lower-is-better (seconds, overhead fractions, state
bytes), and
metrics not matched by :data:`GATED_METRICS` are reported but never
gated (figure-model quantities like speedups are exact by construction
and belong to the figure tests, not the perf gate).
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Any

from repro.perf.report import format_table
from repro.util.stats import mad, median, robust_outlier

from repro.obs.analysis.history import history_values

#: fnmatch patterns of lower-is-better metrics the gate enforces.
GATED_METRICS: tuple[str, ...] = (
    "time_s",
    "s_per_tick_*",
    "*_seconds",
    "*_overhead_s",
    "*_overhead_frac",
    "total_s_*",
    "*_write_read_s",
    # Memory footprint (bytes) is lower-is-better like the timings; it
    # is byte-exact per config, so any growth is a real state-size change.
    "*_nbytes",
    # Traced-heap metrics from the host profiler (mem_peak_nbytes, ...):
    # the mem_ prefix gates them uniformly even when a future metric is
    # reported in other units than bytes.
    "mem_*",
    # Host interpreter cost per unit of modelled work (schema-4 benches).
    "host_ns_per_*",
)


def is_gated(metric: str) -> bool:
    return any(fnmatch(metric, pattern) for pattern in GATED_METRICS)


@dataclass(frozen=True)
class GateResult:
    """Verdict for one (bench, metric) pair."""

    bench: str
    metric: str
    value: float
    baseline: float  # median of history; NaN when no history
    threshold: float  # failing above this; NaN when not gated
    n_history: int
    gated: bool
    ok: bool
    reason: str

    def describe(self) -> str:
        status = "ok" if self.ok else "REGRESSION"
        return f"{status}: {self.bench}/{self.metric} — {self.reason}"


def _gate_one(
    bench: str,
    metric: str,
    value: float,
    baseline: list[float],
    rel_tol: float,
    mad_k: float,
    min_history: int,
) -> GateResult:
    nan = float("nan")
    if not is_gated(metric):
        return GateResult(bench, metric, value, nan, nan, len(baseline),
                          gated=False, ok=True, reason="not gated")
    if not baseline:
        return GateResult(bench, metric, value, nan, nan, 0, gated=True,
                          ok=True, reason="no history for this fingerprint")
    center = median(baseline)
    rel_threshold = center * (1.0 + rel_tol)
    if len(baseline) >= min_history:
        threshold = max(center + mad_k * 1.4826 * mad(baseline), rel_threshold)
        basis = f"median+{mad_k:g}*MAD over {len(baseline)}"
    else:
        threshold = rel_threshold
        basis = f"median*{1.0 + rel_tol:g} over {len(baseline)} (short history)"
    failed = robust_outlier(
        value, baseline, k=mad_k, rel_tol=rel_tol, min_n=min_history
    )
    ratio = value / center if center else float("inf")
    reason = (
        f"value {value:.6g} vs baseline {center:.6g} ({ratio:.2f}x), "
        f"threshold {threshold:.6g} ({basis})"
    )
    return GateResult(bench, metric, value, center, threshold, len(baseline),
                      gated=True, ok=not failed, reason=reason)


def gate_results(
    results: list[dict[str, Any]],
    history: list[dict[str, Any]],
    rel_tol: float = 0.15,
    mad_k: float = 4.0,
    min_history: int = 4,
) -> list[GateResult]:
    """Gate every metric of every bench payload against the history.

    ``results`` are ``BENCH_<name>.json`` payloads; ``history`` is the
    record list of :func:`repro.obs.analysis.history.load_history`.
    Results are ordered (bench, metric) so reports are deterministic.
    """
    from repro.obs.analysis.history import record_from_bench

    verdicts: list[GateResult] = []
    for payload in sorted(results, key=lambda p: str(p.get("name", ""))):
        record = record_from_bench(payload)
        name = record["name"]
        fingerprint = record["fingerprint"]
        for metric, value in sorted(record["metrics"].items()):
            baseline = history_values(history, name, fingerprint, metric)
            verdicts.append(
                _gate_one(name, metric, value, baseline, rel_tol, mad_k,
                          min_history)
            )
    return verdicts


def failures(verdicts: list[GateResult]) -> list[GateResult]:
    return [v for v in verdicts if not v.ok]


def format_gate_report(verdicts: list[GateResult]) -> str:
    """Deterministic gate report: one row per gated metric, then verdict."""
    rows = []
    for v in verdicts:
        if not v.gated:
            continue
        rows.append(
            (
                v.bench,
                v.metric,
                f"{v.value:.6g}",
                "-" if v.n_history == 0 else f"{v.baseline:.6g}",
                "-" if v.n_history == 0 else f"{v.threshold:.6g}",
                v.n_history,
                "ok" if v.ok else "FAIL",
            )
        )
    table = format_table(
        ["bench", "metric", "value", "baseline", "threshold", "n", "status"],
        rows,
        title="== perf gate ==",
    )
    bad = failures(verdicts)
    lines = [table, ""]
    if bad:
        lines.append(f"perf gate FAILED: {len(bad)} regression(s)")
        for v in bad:
            lines.append(f"  {v.describe()}")
    else:
        gated = sum(1 for v in verdicts if v.gated)
        lines.append(f"perf gate passed: {gated} metric(s) within bounds")
    return "\n".join(lines) + "\n"
