"""Critical-path extraction from deterministic span traces.

The semi-synchronous main loop (§III Listing 1) is bounded each tick by
the slowest rank of each phase: every rank must finish Synapse+Neuron
before the tick collective, and the tick cannot end before the slowest
Network phase.  The critical path of a run is therefore, per tick, the
chain ``max-rank(compute) → sync collective → max-rank(network)``.

The functional simulator has no intra-tick clock, so phase *work* is
measured in deterministic integer work units computed from the span
attributes the tick loop records — mirroring the leading terms of the
calibrated cost model (:mod:`repro.perf.costmodel`): synapse time scales
with active axons, neuron time with evaluations and fired spikes, and
the network phase pays a per-message critical section ([23], §III) on
top of per-spike delivery.  Integer weights keep every aggregate exact,
so reports are byte-identical run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.perf.report import format_table

#: Phase execution order within one tick of Listing 1.
PHASE_ORDER = ("compute", "sync", "network")

#: Integer work-unit weights per span attribute, by phase span name.
#: Documented in docs/perf_analysis.md; the absolute scale is arbitrary,
#: only ratios matter, and all inputs are integer event counts.  The
#: ``synapse``/``neuron`` sub-span weights are consumed by the flame
#: folder only — the critical path walks the enclosing ``compute`` span.
PHASE_WEIGHTS: dict[str, tuple[tuple[str, int], ...]] = {
    "compute": (("active_axons", 1), ("fired", 4), ("remote_spikes", 2)),
    "synapse": (("active_axons", 1),),
    "neuron": (("fired", 4), ("messages", 1)),
    "sync": (("sent", 1), ("expected", 1)),
    "network": (
        ("messages", 16),
        ("spikes_received", 1),
        ("local_delivered", 1),
    ),
}

#: Marker line introducing the partition-invariant report section; the
#: text from this line on is identical across rank counts.
INVARIANT_MARKER = "== cluster totals (partition-invariant) =="


def span_cost(name: str, args: Mapping[str, Any]) -> int:
    """Work units of one phase span; every phase participates (>= 1)."""
    weights = PHASE_WEIGHTS.get(name, ())
    return 1 + sum(w * int(args.get(key, 0)) for key, w in weights)


@dataclass(frozen=True)
class TickCritical:
    """The binding chain of one tick."""

    tick: int
    #: Phase with the largest bounding cost this tick.
    phase: str
    #: Rank bounding that phase (lowest rank on ties).
    rank: int
    #: Sum over phases of the per-phase maximum — the tick's critical cost.
    cost: int
    #: phase -> (binding rank, bounding cost) for every phase present.
    phases: tuple[tuple[str, int, int], ...]


@dataclass(frozen=True)
class CriticalPath:
    """Aggregated critical path of a run."""

    ticks: tuple[TickCritical, ...]
    #: phase -> summed bounding cost over all ticks.
    phase_cost: tuple[tuple[str, int], ...]
    #: phase -> number of ticks bound by that phase.
    phase_bound: tuple[tuple[str, int], ...]
    #: (rank, phase) -> number of ticks that rank bounded that phase.
    rank_phase_bound: tuple[tuple[int, str, int], ...]
    #: Partition-invariant per-tick cluster totals, from ``tick`` summaries:
    #: (metric, total, max over ticks).
    cluster_totals: tuple[tuple[str, int, int], ...]

    @property
    def total_cost(self) -> int:
        return sum(c for _, c in self.phase_cost)

    @property
    def binding_phase(self) -> str:
        """The phase bounding the most ticks (run-level verdict)."""
        if not self.phase_bound:
            return "none"
        best = max(self.phase_bound, key=lambda pc: (pc[1], -PHASE_ORDER.index(pc[0])))
        return best[0]


def critical_path(events: list[dict[str, Any]]) -> CriticalPath:
    """Extract the critical path from an event-record stream.

    Consumes the per-rank ``compute``/``sync``/``network`` phase spans
    (``synapse``/``neuron`` sub-spans are contained in ``compute`` and
    would double-count) and the cluster-track ``tick`` summaries.
    """
    # (tick, phase) -> list of (rank, cost); ticks/ranks arrive in
    # deterministic emission order.
    costs: dict[tuple[int, str], list[tuple[int, int]]] = {}
    totals: dict[str, list[int]] = {}
    for rec in events:
        name = rec.get("name")
        if rec.get("ph") == "X" and name in PHASE_ORDER:
            tick = int(rec.get("tick", -1))
            cost = span_cost(name, rec.get("args") or {})
            costs.setdefault((tick, name), []).append((int(rec.get("rank", 0)), cost))
        elif name == "tick" and rec.get("rank") == -1 and rec.get("ph") == "i":
            for key, value in sorted((rec.get("args") or {}).items()):
                if isinstance(value, (int, float)):
                    totals.setdefault(key, []).append(int(value))

    per_tick: dict[int, list[tuple[str, int, int]]] = {}
    for (tick, phase), rank_costs in sorted(costs.items()):
        # Binding rank: maximum cost, lowest rank on ties.
        cost, rank = max((c, -r) for r, c in rank_costs)
        per_tick.setdefault(tick, []).append((phase, -rank, cost))

    ticks: list[TickCritical] = []
    phase_cost: dict[str, int] = {}
    phase_bound: dict[str, int] = {}
    rank_phase: dict[tuple[int, str], int] = {}
    for tick, entries in sorted(per_tick.items()):
        entries.sort(key=lambda e: PHASE_ORDER.index(e[0]))
        binding = max(entries, key=lambda e: (e[2], -PHASE_ORDER.index(e[0])))
        total = sum(c for _, _, c in entries)
        ticks.append(
            TickCritical(
                tick=tick,
                phase=binding[0],
                rank=binding[1],
                cost=total,
                phases=tuple(entries),
            )
        )
        phase_bound[binding[0]] = phase_bound.get(binding[0], 0) + 1
        for phase, rank, cost in entries:
            phase_cost[phase] = phase_cost.get(phase, 0) + cost
            rank_phase[(rank, phase)] = rank_phase.get((rank, phase), 0) + 1

    cluster = tuple(
        (metric, sum(series), max(series))
        for metric, series in sorted(totals.items())
    )
    return CriticalPath(
        ticks=tuple(ticks),
        phase_cost=tuple(sorted(phase_cost.items())),
        phase_bound=tuple(sorted(phase_bound.items())),
        rank_phase_bound=tuple(
            (rank, phase, n) for (rank, phase), n in sorted(rank_phase.items())
        ),
        cluster_totals=cluster,
    )


def format_critical_report(cp: CriticalPath, max_tick_rows: int = 50) -> str:
    """Deterministic plain-text critical-path report.

    Everything above :data:`INVARIANT_MARKER` is layout-specific (it
    names ranks); the cluster-totals section below it is identical
    across rank counts for the same network and seed.
    """
    lines: list[str] = ["# critical-path report", ""]
    total = cp.total_cost or 1

    rows = [
        (phase, cost, f"{cost / total:.1%}", dict(cp.phase_bound).get(phase, 0))
        for phase, cost in cp.phase_cost
    ]
    lines.append(
        format_table(
            ["phase", "work_units", "share", "ticks_bound"],
            rows,
            title="== who bounded the run ==",
        )
    )
    lines.append(f"run bound by: {cp.binding_phase}")
    lines.append("")

    lines.append(
        format_table(
            ["rank", "phase", "ticks_bound"],
            list(cp.rank_phase_bound),
            title="== binding ranks ==",
        )
    )
    lines.append("")

    tick_rows = [
        (t.tick, t.phase, t.rank, t.cost) for t in cp.ticks[:max_tick_rows]
    ]
    title = "== binding phase per tick =="
    if len(cp.ticks) > max_tick_rows:
        title += f" (first {max_tick_rows} of {len(cp.ticks)})"
    lines.append(
        format_table(["tick", "phase", "rank", "critical_cost"], tick_rows,
                     title=title)
    )
    lines.append("")

    lines.append(
        format_table(
            ["metric", "total", "max_per_tick"],
            list(cp.cluster_totals),
            title=INVARIANT_MARKER,
        )
    )
    return "\n".join(lines) + "\n"


def invariant_section(report: str) -> str:
    """The partition-invariant tail of an analysis report ('' if absent)."""
    idx = report.find(INVARIANT_MARKER)
    return report[idx:] if idx >= 0 else ""


def analyze_report(events: list[dict[str, Any]]) -> str:
    """The combined ``repro obs analyze`` report: critical path + imbalance.

    The imbalance section precedes the critical-path report so the
    partition-invariant cluster totals stay the trailing section that
    :func:`invariant_section` extracts.
    """
    from repro.obs.analysis.imbalance import (
        format_imbalance_report,
        imbalance_heatmap,
    )

    cp = critical_path(events)
    imb = format_imbalance_report(imbalance_heatmap(events))
    return imb + "\n" + format_critical_report(cp)
