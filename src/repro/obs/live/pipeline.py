"""The live-telemetry pipeline: rollups + SLO engine behind one facade.

:class:`LiveTelemetry` is what the shard router owns when streaming
telemetry is enabled.  The router feeds it terminal jobs (via server
completion hooks) and closes windows at simulated-clock boundaries; the
pipeline fans each close out to the streaming rollup, the SLO engine,
the record sinks, and — when tracing is on — ``cat="alert"`` trace
instants at the window-close timestamp.

Sinks are plain callables taking one JSON-ready dict; the CLI installs
line-writing sinks so a fleet run streams its rollups to disk with
O(window) memory.  When no rollup sink is installed, records are counted
and dropped.  Alert transitions are always retained on ``alerts`` —
they are O(transitions), not O(run) — so :func:`repro.shard.fleet.
build_fleet_report` can surface them without a sink.

Disabled path: when ``FleetConfig.telemetry`` is None the router holds
no pipeline at all — the per-completion hot path gains nothing but the
pre-existing hook dispatch, mirroring the ``NULL_TRACER`` contract
(benchmarked by ``benchmarks/bench_obs_stream.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.live.rollup import StreamingRollup
from repro.obs.live.slo import DEFAULT_RULES, BurnRateRule, SLO, SLOEngine
from repro.obs.span import NULL_TRACER
from repro.serve.jobs import Job
from repro.util.validation import check_positive


@dataclass(frozen=True)
class TelemetryConfig:
    """Declarative streaming-telemetry configuration for a fleet."""

    #: Rollup window length on the simulated clock.
    window_us: float = 100_000.0
    #: Objectives the SLO engine evaluates each window.
    slos: tuple[SLO, ...] = ()
    #: Multi-window burn-rate alert rules applied to every SLO.
    rules: tuple[BurnRateRule, ...] = DEFAULT_RULES
    #: Emit per-tenant rollup records (active tenants only).
    per_tenant: bool = True

    def __post_init__(self) -> None:
        check_positive("window_us", self.window_us)


class LiveTelemetry:
    """Streaming rollups + SLO alerting for one fleet run."""

    def __init__(
        self,
        config: TelemetryConfig,
        n_shards: int,
        tracer: Any = NULL_TRACER,
        rollup_sink: Callable[[dict[str, Any]], None] | None = None,
        alert_sink: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        self.config = config
        self.tracer = tracer
        self.alert_sink = alert_sink
        self.rollup = StreamingRollup(
            window_us=config.window_us,
            n_shards=n_shards,
            per_tenant=config.per_tenant,
            sink=rollup_sink,
        )
        self.engine = SLOEngine(config.slos, config.rules)
        #: Every fire/resolve transition, in emission order.
        self.alerts: list[dict[str, Any]] = []
        self._finalized = False

    # -- wiring ---------------------------------------------------------------

    @property
    def rollup_sink(self) -> Callable[[dict[str, Any]], None] | None:
        return self.rollup.sink

    @rollup_sink.setter
    def rollup_sink(self, sink: Callable[[dict[str, Any]], None] | None) -> None:
        self.rollup.sink = sink

    @property
    def next_boundary_us(self) -> float:
        """Simulated time at which the open window closes."""
        return self.rollup.open_t1_us

    @property
    def windows_closed(self) -> int:
        return self.rollup.windows_closed

    @property
    def records_emitted(self) -> int:
        return self.rollup.records_emitted

    # -- the streaming path ---------------------------------------------------

    def observe(self, shard: int, job: Job) -> None:
        """Fold one terminal job (wired as a server completion hook)."""
        self.rollup.observe(shard, job)

    def close_window(self, depths: list[int]) -> None:
        """Close the open window at its boundary; evaluate SLOs and alert."""
        window = self.rollup.window
        t_us = self.rollup.open_t1_us
        slo_inputs = self.rollup.close_window(depths)
        for alert in self.engine.evaluate(window, t_us, slo_inputs):
            self.alerts.append(alert)
            if self.alert_sink is not None:
                self.alert_sink(alert)
            if self.tracer.enabled:
                self.tracer.instant(
                    f"slo.{alert['state']}",
                    rank=alert["shard"],
                    tick=-1,
                    ts_us=t_us,
                    cat="alert",
                    slo=alert["slo"],
                    rule=alert["rule"],
                    scope=alert["scope"],
                    window=window,
                    burn_long=alert["burn_long"],
                    burn_short=alert["burn_short"],
                )

    def finalize(self, depths: list[int]) -> None:
        """Close every window up to and including the last observation's.

        Idempotent; called once the fleet has drained.  ``max_ts_us`` is a
        layout-invariant simulated quantity, so the number of windows a
        seeded run emits is identical across rank layouts.
        """
        if self._finalized:
            return
        self._finalized = True
        while self.rollup.open_t0_us <= self.rollup.max_ts_us:
            self.close_window(depths)
