"""Reconstruct one job's causal journey from a JSONL event log.

Every stage the fleet traces for a job is an ``X`` slice named
``job.<stage>`` whose args carry the :class:`~repro.obs.live.context.
TraceContext` triplet (``trace``, ``span``, ``parent``).  Because each
stage's span is derived from its parent's, the full router → shard →
queue → batch → run → done chain is recoverable from the log alone —
no side tables, no run state — and the parent links double as an
integrity check: a break means the log was truncated or mixed from two
runs.

This is the offline half of ``repro obs journey``; the online half is
the Perfetto flow arrows (phases ``s``/``t``/``f``) the same stages
emit, which draw the identical chain in the trace viewer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import AnalysisError

#: Event-name prefix of job stage slices.
STAGE_PREFIX = "job."


def _stage_records(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    return [
        r
        for r in records
        if r.get("ph") == "X"
        and str(r.get("name", "")).startswith(STAGE_PREFIX)
        and "trace" in (r.get("args") or {})
    ]


@dataclass(frozen=True)
class JourneyStep:
    """One stage of a reconstructed journey."""

    stage: str
    ts_us: float
    rank: int
    span: str
    parent: str
    args: dict[str, Any]


@dataclass(frozen=True)
class Journey:
    """One job's full causal chain, in emission (= causal) order."""

    trace_id: str
    tenant: str
    job: int
    steps: tuple[JourneyStep, ...]

    @property
    def stages(self) -> list[str]:
        return [step.stage for step in self.steps]

    def format(self) -> str:
        """Human-readable journey (stable layout; byte-identical per log)."""
        lines = [
            f"journey {self.trace_id}  tenant={self.tenant} job={self.job}",
            f"  chain: {' -> '.join(self.stages)}",
        ]
        for step in self.steps:
            extras = " ".join(
                f"{k}={step.args[k]}"
                for k in sorted(step.args)
                if k not in ("trace", "span", "parent", "job", "tenant", "tick")
            )
            lines.append(
                f"  {step.ts_us:>14.2f}us  rank={step.rank:>3}  "
                f"{step.stage:<8} span={step.span}"
                + (f"  {extras}" if extras else "")
            )
        return "\n".join(lines)


def find_traces(
    records: list[dict[str, Any]],
    job: int | None = None,
    tenant: str | None = None,
    trace: str | None = None,
) -> list[str]:
    """Trace ids matching the selectors, in first-appearance order.

    Per-shard job ids can collide across shards, so a bare ``job``
    selector may match several traces — callers disambiguate with
    ``tenant`` or pick deterministically (the CLI takes the first and
    says so).
    """
    seen: dict[str, bool] = {}
    for rec in _stage_records(records):
        args = rec["args"]
        if trace is not None and args.get("trace") != trace:
            continue
        if job is not None and args.get("job") != job:
            continue
        if tenant is not None and args.get("tenant", "") != tenant:
            continue
        seen.setdefault(str(args["trace"]), True)
    return list(seen)


def reconstruct_journey(
    records: list[dict[str, Any]], trace_id: str
) -> Journey:
    """Rebuild the causal chain of ``trace_id``, verifying parent links."""
    steps: list[JourneyStep] = []
    tenant = ""
    job = -1
    for rec in _stage_records(records):
        args = rec["args"]
        if args.get("trace") != trace_id:
            continue
        steps.append(
            JourneyStep(
                stage=str(rec["name"])[len(STAGE_PREFIX):],
                ts_us=float(rec.get("ts", 0.0)),
                # JSONL event-log records carry the rank directly;
                # Chrome-trace records encode it as tid = rank + 1
                # (tid 0 is the cluster row); see repro.obs.perfetto.
                rank=int(rec["rank"]) if "rank" in rec
                else int(rec.get("tid", 0)) - 1,
                span=str(args.get("span", "")),
                parent=str(args.get("parent", "")),
                args=dict(args),
            )
        )
        tenant = str(args.get("tenant", tenant))
        job = int(args.get("job", job))
    if not steps:
        raise AnalysisError(f"no stage events for trace {trace_id!r} in the log")
    expected_parent = trace_id
    for step in steps:
        if step.parent != expected_parent:
            raise AnalysisError(
                f"broken causal chain in trace {trace_id!r}: stage "
                f"{step.stage!r} has parent {step.parent} but the previous "
                f"span is {expected_parent} (truncated or mixed log?)"
            )
        expected_parent = step.span
    return Journey(trace_id=trace_id, tenant=tenant, job=job, steps=tuple(steps))
