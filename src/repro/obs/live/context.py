"""Deterministic causal trace contexts for the serving fleet.

A :class:`TraceContext` names one job's journey through the fleet — the
trace — and one stage within it — the span.  Ids are content-defined
(first 8 bytes of a SHA-256, the same construction as the shard ring's
``stable_hash64``), never drawn from a counter or a host RNG, so the
identical seeded run produces the identical ids on every machine and
every rank layout:

* ``trace_id = H(tenant / job_id / submit_us)`` — stable across the
  whole journey; the Perfetto flow id that stitches router → shard →
  queue → batch → run → done into one arrowed chain;
* ``span_id = H(trace_id / parent_span / stage)`` — each stage derives
  its span from its parent's, so the parent links reconstruct the causal
  chain from the event log alone (see :mod:`repro.obs.live.journey`).

Contexts are frozen values: propagating one is an assignment, never a
mutation, which keeps the hot path allocation-free when tracing is off
(the context is only ever built under a ``tracer.enabled`` guard).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def stable_hash64(key: str) -> int:
    """First 8 bytes of SHA-256(key) — content-defined, layout-invariant.

    Deliberately identical to :func:`repro.shard.ring.stable_hash64`
    (re-implemented here so ``repro.obs`` never imports the shard tier it
    instruments); Python's builtin ``hash()`` is per-process randomised
    and would break byte-identical trace ids.
    """
    return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


def job_trace_id(tenant: str, job_id: int, submit_us: float) -> str:
    """The 16-hex trace id of one job's journey.

    ``submit_us`` uses ``repr`` so the full float participates — two jobs
    of one tenant can share a per-shard ``job_id`` across shards but
    never a submit instant drawn from the seeded arrival process.
    """
    return f"{stable_hash64(f'{tenant}/{job_id}/{submit_us!r}'):016x}"


@dataclass(frozen=True)
class TraceContext:
    """One stage of one job's causal trace.

    ``parent_id`` is the previous stage's span (the trace id itself for
    the first stage), giving every emitted stage slice the link structure
    a journey reconstruction walks.
    """

    trace_id: str
    span_id: str
    parent_id: str = ""
    stage: str = "root"

    @classmethod
    def root(cls, tenant: str, job_id: int, submit_us: float) -> "TraceContext":
        """The journey's root context; its span is the trace id itself."""
        tid = job_trace_id(tenant, job_id, submit_us)
        return cls(trace_id=tid, span_id=tid, parent_id="", stage="root")

    def child(self, stage: str) -> "TraceContext":
        """Derive the next stage's context, parented to this one."""
        span = f"{stable_hash64(f'{self.trace_id}/{self.span_id}/{stage}'):016x}"
        return TraceContext(
            trace_id=self.trace_id, span_id=span, parent_id=self.span_id, stage=stage
        )
