"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLO` states an objective — jobs should finish within
``latency_target_us``, and at most ``error_budget`` of them may fail it
(miss the target or be rejected).  Every closed rollup window the engine
computes the window's *burn rate*: the bad fraction divided by the
budget, so burn 1.0 means "spending the budget exactly as fast as
allowed" and burn 10.0 means "ten times too fast".

Alert rules follow the multi-window burn-rate shape from the SRE
literature: a rule fires only when both a long lookback (sustained — not
a single bad window) and a short lookback (still happening — not an old
scar) exceed the threshold, and it resolves as soon as the short window
recovers.  Only the fire/resolve *transitions* are recorded, so the
alert log stays tiny and — because every input is a deterministic
window aggregate on the simulated clock — byte-identical across repeated
runs and rank layouts.

Objectives are evaluated per scope: the fleet as a whole, then each
shard, in fixed index order, so the alert stream has one canonical
serialisation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.obs.live.rollup import SloInput
from repro.util.validation import check_positive, check_range, require

#: Schema tag stamped into every alert record.
ALERT_SCHEMA = 1


@dataclass(frozen=True)
class SLO:
    """One declarative objective: a latency target and an error budget."""

    name: str
    latency_target_us: float
    error_budget: float

    def __post_init__(self) -> None:
        require(bool(self.name), "SLO name must be a non-empty string")
        check_positive("latency_target_us", self.latency_target_us)
        check_range("error_budget", self.error_budget, lo=0.0, hi=1.0)
        require(self.error_budget > 0.0, "error_budget must be > 0")

    def bad_count(self, agg: "Any") -> int:
        """Jobs in one window aggregate that burned this SLO's budget."""
        over = sum(1 for lat in agg.latencies if lat > self.latency_target_us)
        return over + agg.rejected


@dataclass(frozen=True)
class BurnRateRule:
    """Fire when both lookbacks burn faster than ``threshold``."""

    label: str
    long_windows: int
    short_windows: int
    threshold: float

    def __post_init__(self) -> None:
        require(bool(self.label), "rule label must be a non-empty string")
        check_range("long_windows", self.long_windows, lo=1)
        check_range("short_windows", self.short_windows, lo=1, hi=self.long_windows)
        check_positive("threshold", self.threshold)


#: Default page/ticket rule pair (burn thresholds in budget-multiples).
DEFAULT_RULES: tuple[BurnRateRule, ...] = (
    BurnRateRule("page", long_windows=4, short_windows=1, threshold=8.0),
    BurnRateRule("ticket", long_windows=12, short_windows=3, threshold=2.0),
)


class _BurnState:
    """Per-(scope, SLO) ring of window (bad, total) counts."""

    __slots__ = ("history",)

    def __init__(self, depth: int) -> None:
        self.history: deque[tuple[int, int]] = deque(maxlen=depth)

    def push(self, bad: int, total: int) -> None:
        self.history.append((bad, total))

    def burn(self, windows: int, budget: float) -> float:
        """Burn rate over the last ``windows`` entries (ratio of sums)."""
        recent = list(self.history)[-windows:]
        total = sum(t for _, t in recent)
        if total == 0:
            return 0.0
        bad = sum(b for b, _ in recent)
        return (bad / total) / budget


class SLOEngine:
    """Evaluates every (scope, SLO, rule) triple at each window close."""

    def __init__(
        self,
        slos: tuple[SLO, ...],
        rules: tuple[BurnRateRule, ...] = DEFAULT_RULES,
    ) -> None:
        names = [slo.name for slo in slos]
        require(len(names) == len(set(names)), "SLO names must be unique")
        labels = [rule.label for rule in rules]
        require(len(labels) == len(set(labels)), "rule labels must be unique")
        self.slos = tuple(slos)
        self.rules = tuple(rules)
        self._depth = max((rule.long_windows for rule in self.rules), default=1)
        #: (scope, shard, slo_name) -> burn history.
        self._state: dict[tuple[str, int, str], _BurnState] = {}
        #: (scope, shard, slo_name, rule_label) -> currently firing?
        self._active: dict[tuple[str, int, str, str], bool] = {}
        self.fired = 0
        self.resolved = 0

    def evaluate(
        self, window: int, t_us: float, slo_inputs: list[SloInput]
    ) -> list[dict[str, Any]]:
        """Fold one closed window; return fire/resolve transition records."""
        transitions: list[dict[str, Any]] = []
        for scope, shard, agg in slo_inputs:
            for slo in self.slos:
                key = (scope, shard, slo.name)
                state = self._state.get(key)
                if state is None:
                    state = self._state[key] = _BurnState(self._depth)
                state.push(slo.bad_count(agg), agg.terminal)
                for rule in self.rules:
                    burn_long = state.burn(rule.long_windows, slo.error_budget)
                    burn_short = state.burn(rule.short_windows, slo.error_budget)
                    akey = (scope, shard, slo.name, rule.label)
                    active = self._active.get(akey, False)
                    if not active and (
                        burn_long >= rule.threshold and burn_short >= rule.threshold
                    ):
                        self._active[akey] = True
                        self.fired += 1
                        transitions.append(
                            self._record(
                                "fire", window, t_us, scope, shard, slo, rule,
                                burn_long, burn_short,
                            )
                        )
                    elif active and burn_short < rule.threshold:
                        self._active[akey] = False
                        self.resolved += 1
                        transitions.append(
                            self._record(
                                "resolve", window, t_us, scope, shard, slo, rule,
                                burn_long, burn_short,
                            )
                        )
        return transitions

    @staticmethod
    def _record(
        state: str,
        window: int,
        t_us: float,
        scope: str,
        shard: int,
        slo: SLO,
        rule: BurnRateRule,
        burn_long: float,
        burn_short: float,
    ) -> dict[str, Any]:
        return {
            "schema": ALERT_SCHEMA,
            "kind": "alert",
            "state": state,
            "slo": slo.name,
            "rule": rule.label,
            "scope": scope,
            "shard": shard,
            "window": window,
            "t_us": t_us,
            "burn_long": burn_long,
            "burn_short": burn_short,
            "threshold": rule.threshold,
        }
