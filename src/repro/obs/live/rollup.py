"""Streaming per-window rollups on the simulated clock.

The rollup pipeline turns the fleet's completion stream into fixed
simulated-time windows ``[k*W, (k+1)*W)`` that close *online*, on the
simulated clock, while the run is still in flight — the aggregate-as-
you-go discipline the 1024-process scaling study (arXiv:1511.09325)
found instrumentation needs to survive scale.  Memory is O(window):
aggregates for the open window only, flushed to a sink callback as
schema-tagged JSONL-ready records the moment the window closes.

Window assignment is half-open: a completion at exactly a boundary
belongs to the *next* window.  The shard router guarantees the matching
processing order (events strictly before a boundary are drained, the
window closes, then boundary-instant events run), so assignment is a
pure function of simulated timestamps and the record stream is
byte-identical across repeated runs and rank layouts.

Per window, three scopes are emitted in a fixed order: the fleet record,
one record per shard (always, even for empty windows — absence of load
is itself a signal), and one record per *active* tenant (sorted by
name; idle tenants cost nothing, keeping the tenant dimension O(active),
not O(universe)).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.serve.jobs import REJECTED, Job
from repro.util.stats import percentile_sorted
from repro.util.validation import check_positive, check_range

#: Schema tag stamped into every rollup record.
ROLLUP_SCHEMA = 1


class WindowAggregate:
    """Online aggregate state for one scope within one window."""

    __slots__ = ("completed", "rejected", "missed", "good", "latencies")

    def __init__(self) -> None:
        self.completed = 0
        self.rejected = 0
        self.missed = 0
        self.good = 0
        self.latencies: list[float] = []

    @property
    def terminal(self) -> int:
        return self.completed + self.rejected

    def observe(self, job: Job) -> None:
        """Fold one terminal job (mirrors ``ShardAccumulator.observe``)."""
        if job.deadline_missed:
            self.missed += 1
        if job.status == REJECTED:
            self.rejected += 1
            return
        self.completed += 1
        self.latencies.append(job.latency_us)
        if not job.deadline_missed:
            self.good += 1

    def record(
        self,
        window: int,
        t0_us: float,
        t1_us: float,
        scope: str,
        shard: int,
        tenant: str,
        queue_depth: int,
    ) -> dict[str, Any]:
        """The closed-window rollup record for this scope."""
        ordered = sorted(self.latencies)
        span_s = (t1_us - t0_us) / 1e6
        return {
            "schema": ROLLUP_SCHEMA,
            "kind": "rollup",
            "window": window,
            "t0_us": t0_us,
            "t1_us": t1_us,
            "scope": scope,
            "shard": shard,
            "tenant": tenant,
            "completed": self.completed,
            "rejected": self.rejected,
            "missed": self.missed,
            "good": self.good,
            "throughput_per_s": self.completed / span_s if span_s > 0 else 0.0,
            "queue_depth": queue_depth,
            "p50_us": percentile_sorted(ordered, 50.0) if ordered else 0.0,
            "p95_us": percentile_sorted(ordered, 95.0) if ordered else 0.0,
            "p99_us": percentile_sorted(ordered, 99.0) if ordered else 0.0,
            "miss_rate": self.missed / self.terminal if self.terminal else 0.0,
        }


#: One scope's inputs to the SLO engine: (scope, shard, aggregate).
SloInput = tuple[str, int, WindowAggregate]


class StreamingRollup:
    """Fixed-window online aggregation over the fleet completion stream.

    ``observe`` folds terminal jobs into the open window's aggregates;
    ``close_window`` flushes one window (records go to ``sink``) and
    opens the next.  The caller — :class:`repro.obs.live.pipeline.
    LiveTelemetry`, driven by the shard router — closes windows at
    simulated-clock boundaries, so assignment never buffers more than the
    open window.
    """

    def __init__(
        self,
        window_us: float,
        n_shards: int,
        per_tenant: bool = True,
        sink: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        check_positive("window_us", window_us)
        check_range("n_shards", n_shards, lo=1)
        self.window_us = float(window_us)
        self.n_shards = n_shards
        self.per_tenant = per_tenant
        self.sink = sink
        self.window = 0
        self.windows_closed = 0
        self.records_emitted = 0
        #: Largest observation timestamp seen — drives finalisation.
        self.max_ts_us = 0.0
        self._fleet = WindowAggregate()
        self._shards = [WindowAggregate() for _ in range(n_shards)]
        self._tenants: dict[str, WindowAggregate] = {}

    @property
    def open_t0_us(self) -> float:
        return self.window * self.window_us

    @property
    def open_t1_us(self) -> float:
        return (self.window + 1) * self.window_us

    def observe(self, shard: int, job: Job) -> None:
        """Fold one terminal job from ``shard`` into the open window."""
        t = job.finish_us if job.finish_us >= 0 else job.submit_us
        self.max_ts_us = max(self.max_ts_us, t)
        self._fleet.observe(job)
        self._shards[shard].observe(job)
        if self.per_tenant:
            agg = self._tenants.get(job.spec.tenant)
            if agg is None:
                agg = self._tenants[job.spec.tenant] = WindowAggregate()
            agg.observe(job)

    def close_window(self, depths: list[int]) -> list[SloInput]:
        """Flush the open window's records and open the next.

        ``depths`` are the per-shard queue depths sampled at the boundary.
        Returns the fleet + per-shard aggregates for the SLO engine (it
        needs raw latencies to count target violations per objective).
        """
        window = self.window
        t0, t1 = self.open_t0_us, self.open_t1_us
        fleet_depth = sum(depths)
        self._emit(self._fleet.record(window, t0, t1, "fleet", -1, "", fleet_depth))
        for shard, agg in enumerate(self._shards):
            self._emit(
                agg.record(window, t0, t1, "shard", shard, "", depths[shard])
            )
        for tenant in sorted(self._tenants):
            self._emit(
                self._tenants[tenant].record(window, t0, t1, "tenant", -1, tenant, -1)
            )
        slo_inputs: list[SloInput] = [("fleet", -1, self._fleet)]
        slo_inputs.extend(
            ("shard", shard, agg) for shard, agg in enumerate(self._shards)
        )
        self._fleet = WindowAggregate()
        self._shards = [WindowAggregate() for _ in range(self.n_shards)]
        self._tenants = {}
        self.window = window + 1
        self.windows_closed += 1
        return slo_inputs

    def _emit(self, record: dict[str, Any]) -> None:
        self.records_emitted += 1
        if self.sink is not None:
            self.sink(record)
