"""Live fleet telemetry: causal traces, streaming rollups, SLO alerting.

The post-hoc observability layer (:mod:`repro.obs`) answers "where did
the time go" after a run; this subpackage answers it *while the fleet is
running*, in three deterministic pieces:

* :mod:`~repro.obs.live.context` — content-defined trace/span ids
  threaded router → queue → batch → run → recovery → done, exported as
  Perfetto flow events;
* :mod:`~repro.obs.live.rollup` — fixed simulated-time windows closing
  on the simulated clock, with per-fleet/per-shard/per-tenant online
  aggregates flushed as schema-tagged JSONL records in O(window) memory;
* :mod:`~repro.obs.live.slo` + :mod:`~repro.obs.live.pipeline` —
  declarative objectives evaluated per window with multi-window
  burn-rate rules, producing a fire/resolve alert log that is
  byte-identical across repeated runs and rank layouts;
* :mod:`~repro.obs.live.journey` — offline reconstruction of one job's
  causal chain from the event log (``repro obs journey``).

See docs/observability.md ("Live telemetry and SLO alerting").
"""

from repro.obs.live.context import TraceContext, job_trace_id, stable_hash64
from repro.obs.live.journey import (
    Journey,
    JourneyStep,
    find_traces,
    reconstruct_journey,
)
from repro.obs.live.pipeline import LiveTelemetry, TelemetryConfig
from repro.obs.live.rollup import ROLLUP_SCHEMA, StreamingRollup, WindowAggregate
from repro.obs.live.slo import (
    ALERT_SCHEMA,
    DEFAULT_RULES,
    BurnRateRule,
    SLO,
    SLOEngine,
)

__all__ = [
    "ALERT_SCHEMA",
    "BurnRateRule",
    "DEFAULT_RULES",
    "Journey",
    "JourneyStep",
    "LiveTelemetry",
    "ROLLUP_SCHEMA",
    "SLO",
    "SLOEngine",
    "StreamingRollup",
    "TelemetryConfig",
    "TraceContext",
    "WindowAggregate",
    "find_traces",
    "job_trace_id",
    "reconstruct_journey",
    "stable_hash64",
]
