"""Deterministic span tracing on the simulated timeline.

The tracer records *what the virtual cluster did* — phase spans, message
instants, fault events — on a timeline derived purely from simulated
quantities, never from the host clock (rule DET101/DET106 territory):

* one simulated tick occupies exactly :data:`TICK_US` microseconds of
  trace time (a TrueNorth tick is 1 ms of biology);
* each tick is split into fixed phase windows (:data:`PHASES`): the
  compute phase (synapse + neuron sub-windows), the sync window (the
  tick collective), and the network window (message delivery);
* fine-grained events inside a window are laid out by a per-tick
  sequence counter at :data:`SEQ_DT_US` spacing, so their order — and
  therefore the whole trace — is a pure function of the simulation's
  deterministic event order.

Because no timestamp ever comes from the host, two runs of the same
seed produce byte-identical event logs; a trace diff that finds *any*
difference has found a real behavioural divergence, not timer noise.

When tracing is disabled the shared :data:`NULL_TRACER` is installed;
hot paths guard on ``tracer.enabled`` (one attribute read) and allocate
nothing — the zero-overhead-when-off contract benchmarked by
``benchmarks/bench_tick_throughput.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Simulated-trace microseconds per tick (1 ms biological TrueNorth tick).
TICK_US = 1000.0

#: Spacing of sequence-numbered events inside a phase window.
SEQ_DT_US = 0.01

#: Fixed fractional windows of one tick, per phase name.  The layout is
#: schematic (the functional simulator has no intra-tick clock); the
#: *modelled* phase durations, when a machine model is attached, travel
#: as span attributes instead of warping this deterministic timeline.
PHASES: dict[str, tuple[float, float]] = {
    "tick": (0.0, 1.0),
    "compute": (0.0, 0.7),
    "synapse": (0.0, 0.35),
    "neuron": (0.35, 0.7),
    "sync": (0.7, 0.78),
    "network": (0.78, 1.0),
}


def _freeze(attrs: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Canonical (sorted) attribute pairs — hashable and order-stable."""
    return tuple(sorted(attrs.items()))


@dataclass(frozen=True)
class TraceEvent:
    """One recorded trace event (Chrome-trace-shaped, backend-agnostic).

    ``ph`` follows the trace-event phase letters: ``X`` complete span,
    ``B``/``E`` nested begin/end, ``i`` instant.  ``rank`` selects the
    track (−1 = the cluster-wide track); ``thread`` is the modelled
    OpenMP thread within the rank.  ``args`` is a sorted tuple of
    (key, value) pairs so records serialise identically run to run.
    """

    name: str
    cat: str
    ph: str
    ts_us: float
    rank: int
    thread: int = 0
    dur_us: float = 0.0
    tick: int = -1
    args: tuple[tuple[str, Any], ...] = ()


class SpanTracer:
    """Records spans and instants on the deterministic simulated timeline.

    The driving loop calls :meth:`begin_tick` once per tick; spans are
    emitted *post hoc* with their phase window (the instrumentation knows
    the tick structure, so no start/stop clock is needed), and instants
    take the next sequence slot inside their window.  Nestable spans use
    :meth:`begin`/:meth:`end` pairs on the same (rank, thread) track.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.tick = 0
        self._seq = 0
        self._stacks: dict[tuple[int, int], list[str]] = {}

    # -- clock ----------------------------------------------------------------

    def begin_tick(self, tick: int) -> None:
        """Enter simulated tick ``tick``; resets the intra-tick sequencer."""
        self.tick = tick
        self._seq = 0

    def window_us(self, phase: str, tick: int | None = None) -> tuple[float, float]:
        """Absolute [t0, t1) microsecond window of ``phase`` in ``tick``."""
        lo, hi = PHASES[phase]
        base = (self.tick if tick is None else tick) * TICK_US
        return base + lo * TICK_US, base + hi * TICK_US

    def _next_ts(self, phase: str, tick: int | None) -> float:
        t0, t1 = self.window_us(phase, tick)
        ts = t0 + self._seq * SEQ_DT_US
        self._seq += 1
        # Clamp runaway sequences inside the window; ties keep emission
        # order, so determinism is unaffected.
        return min(ts, t1 - SEQ_DT_US)

    # -- emission -------------------------------------------------------------

    def span(
        self,
        name: str,
        rank: int,
        phase: str = "tick",
        tick: int | None = None,
        thread: int = 0,
        cat: str = "sim",
        **attrs: Any,
    ) -> None:
        """A complete span covering the whole ``phase`` window of ``tick``."""
        t = self.tick if tick is None else tick
        t0, t1 = self.window_us(phase, t)
        self.events.append(
            TraceEvent(name, cat, "X", t0, rank, thread, t1 - t0, t, _freeze(attrs))
        )

    def instant(
        self,
        name: str,
        rank: int,
        phase: str = "network",
        tick: int | None = None,
        thread: int = 0,
        cat: str = "sim",
        ts_us: float | None = None,
        **attrs: Any,
    ) -> None:
        """A point event at the next sequence slot of ``phase`` (or ``ts_us``)."""
        t = self.tick if tick is None else tick
        ts = self._next_ts(phase, tick) if ts_us is None else ts_us
        self.events.append(
            TraceEvent(name, cat, "i", ts, rank, thread, 0.0, t, _freeze(attrs))
        )

    def complete(
        self,
        name: str,
        rank: int,
        *,
        ts_us: float,
        dur_us: float = SEQ_DT_US,
        thread: int = 0,
        cat: str = "sim",
        tick: int = -1,
        **attrs: Any,
    ) -> None:
        """A complete (``X``) slice at an *explicit* simulated timestamp.

        The phase-window emitters (:meth:`span`, :meth:`begin`) derive
        their timestamps from the tick phase table; event-driven layers
        (serve/shard, whose clock is plain simulated microseconds) use
        this instead and pass ``ts_us`` explicitly — the discipline lint
        rule DET110 enforces.
        """
        self.events.append(
            TraceEvent(name, cat, "X", ts_us, rank, thread, dur_us, tick, _freeze(attrs))
        )

    def flow(
        self,
        name: str,
        rank: int,
        ph: str,
        flow_id: str,
        *,
        ts_us: float,
        thread: int = 0,
        cat: str = "sim",
        tick: int = -1,
        **attrs: Any,
    ) -> None:
        """A flow event (``ph`` one of ``s``/``t``/``f``) with an explicit id.

        Flow events stitch one logical journey (e.g. a job's trace) across
        tracks: ``s`` starts the flow, ``t`` continues it, ``f`` finishes
        it.  The id travels in ``args["flow"]``; the Perfetto exporter
        lifts it to the top-level ``id`` field the trace-event format
        requires.  Each flow event must coincide with a slice on its
        track so viewers can bind the arrow to an enclosing span —
        ``validate_chrome_trace`` checks exactly that.
        """
        if ph not in ("s", "t", "f"):
            raise ValueError(f"flow phase must be 's', 't', or 'f', not {ph!r}")
        attrs["flow"] = flow_id
        self.events.append(
            TraceEvent(name, cat, ph, ts_us, rank, thread, 0.0, tick, _freeze(attrs))
        )

    def begin(
        self,
        name: str,
        rank: int,
        phase: str = "tick",
        tick: int | None = None,
        thread: int = 0,
        cat: str = "sim",
        **attrs: Any,
    ) -> None:
        """Open a nestable span on the (rank, thread) track."""
        t = self.tick if tick is None else tick
        ts = self._next_ts(phase, tick)
        self._stacks.setdefault((rank, thread), []).append(name)
        self.events.append(
            TraceEvent(name, cat, "B", ts, rank, thread, 0.0, t, _freeze(attrs))
        )

    def end(
        self,
        rank: int,
        phase: str = "tick",
        tick: int | None = None,
        thread: int = 0,
        cat: str = "sim",
        **attrs: Any,
    ) -> None:
        """Close the innermost open span on the (rank, thread) track."""
        stack = self._stacks.get((rank, thread))
        if not stack:
            raise ValueError(f"no open span on track (rank={rank}, thread={thread})")
        name = stack.pop()
        t = self.tick if tick is None else tick
        ts = self._next_ts(phase, tick)
        self.events.append(
            TraceEvent(name, cat, "E", ts, rank, thread, 0.0, t, _freeze(attrs))
        )

    def tick_summary(self, tick: int, **attrs: Any) -> None:
        """Cluster-track per-tick summary instant at a *fixed* timestamp.

        Placed at the very end of the tick window independent of how many
        events preceded it, so the record is identical across different
        rank counts — the partition-invariant subset a cross-layout trace
        diff compares (see docs/observability.md).
        """
        ts = (tick + 1) * TICK_US - SEQ_DT_US
        self.events.append(
            TraceEvent("tick", "sim", "i", ts, -1, 0, 0.0, tick, _freeze(attrs))
        )

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def count(self, name: str | None = None, ph: str | None = None) -> int:
        """Number of recorded events matching the optional filters."""
        return sum(
            1
            for e in self.events
            if (name is None or e.name == name) and (ph is None or e.ph == ph)
        )


class NullTracer:
    """The disabled tracer: every method is a no-op, nothing allocates.

    Hot paths additionally guard on :attr:`enabled` so span construction
    (dict packing, attribute formatting) is skipped entirely.
    """

    enabled = False
    events: tuple[TraceEvent, ...] = ()
    tick = 0

    def begin_tick(self, tick: int) -> None:
        pass

    def span(self, *args: Any, **kwargs: Any) -> None:
        pass

    def instant(self, *args: Any, **kwargs: Any) -> None:
        pass

    def complete(self, *args: Any, **kwargs: Any) -> None:
        pass

    def flow(self, *args: Any, **kwargs: Any) -> None:
        pass

    def begin(self, *args: Any, **kwargs: Any) -> None:
        pass

    def end(self, *args: Any, **kwargs: Any) -> None:
        pass

    def tick_summary(self, tick: int, **attrs: Any) -> None:
        pass

    def count(self, name: str | None = None, ph: str | None = None) -> int:
        return 0

    def __len__(self) -> int:
        return 0


#: Shared disabled tracer — the default for every simulator.
NULL_TRACER = NullTracer()
