"""Low-overhead thread-based sampling profiler (HOST-ONLY).

A daemon thread periodically snapshots the target thread's Python stack
via ``sys._current_frames`` and folds it into stackcollapse lines — the
same format :mod:`repro.obs.analysis.flame` emits for simulated work-unit
flames — rooted at ``host`` so both kinds of stack merge into one folded
file and diff side-by-side (``host;...`` vs ``rank N;...``).

Pacing uses :func:`~repro.util.hostclock.host_perf_counter`; the sampler
only ever *reads* interpreter state, and every read sits inside a
``# repro: host-prof`` function — lint rule DET111 rejects profiler
introspection anywhere else in rank-visible code.
"""

from __future__ import annotations

import sys
import threading
from typing import Any

from repro.errors import ConfigurationError
from repro.util.hostclock import host_perf_counter


def _frame_label(frame: Any) -> str:
    """``module:function`` label for one stack frame."""
    module = frame.f_globals.get("__name__")
    if not module:
        module = frame.f_code.co_filename.rsplit("/", 1)[-1]
    return f"{module}:{frame.f_code.co_name}"


class HostSampler:
    """Samples the starting thread's stack at ``hz`` into folded stacks.

    The sampler is host-side measurement only: it never touches simulated
    state and its output is excluded from every deterministic digest.
    ``folded()`` returns ``{stack_path: sample_count}`` with paths rooted
    at ``host``.
    """

    def __init__(self, hz: float = 97.0) -> None:
        if not hz > 0:
            raise ConfigurationError(f"sampler hz must be > 0, got {hz!r}")
        self.hz = float(hz)
        self.samples = 0
        self._folded: dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._target_ident: int | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "HostSampler":
        """Begin sampling the calling thread (idempotent)."""
        if self._thread is not None:
            return self
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-host-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "HostSampler":
        """Stop the sampling thread and join it (idempotent)."""
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._thread = None
        return self

    def __enter__(self) -> "HostSampler":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # repro: host-prof
    def _loop(self) -> None:
        """Sampler thread body: pace on the host clock, drift-corrected.

        The wait timeout is host-side pacing of a measurement thread —
        it never gates simulated progress, so the DET106 host-timeout
        rule does not apply to this wall-clock sleep.
        """
        interval = 1.0 / self.hz
        next_at = host_perf_counter() + interval
        while not self._stop.wait(max(0.0, next_at - host_perf_counter())):
            self._sample()
            next_at += interval
            now = host_perf_counter()
            if next_at < now:  # fell behind; don't burst to catch up
                next_at = now + interval

    # repro: host-prof
    def _sample(self) -> None:
        """Fold the target thread's current stack into the sample map."""
        frame = sys._current_frames().get(self._target_ident)
        if frame is None:
            return
        labels: list[str] = []
        while frame is not None:
            labels.append(_frame_label(frame))
            frame = frame.f_back
        labels.append("host")
        labels.reverse()
        key = ";".join(labels)
        self._folded[key] = self._folded.get(key, 0) + 1
        self.samples += 1

    def folded(self) -> dict[str, int]:
        """A copy of the folded ``{stack_path: samples}`` map."""
        return dict(self._folded)
