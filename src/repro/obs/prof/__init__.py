"""Host-side profiling & memory observability (HOST-ONLY).

Everything in this package measures the *host* — interpreter CPU stacks,
Python-heap bytes, host nanoseconds per unit of modelled work — and is
strictly isolated from the deterministic rank-visible path:

* :class:`~repro.obs.prof.sampler.HostSampler` — thread-based sampling
  profiler emitting stackcollapse folded stacks rooted at ``host``;
* :class:`~repro.obs.prof.memory.MemoryTracker` — tracemalloc-backed
  attribution of peak/current bytes to subsystems and per-phase deltas;
* :class:`~repro.obs.prof.profile.HostProfile` — per-(phase, rank)
  host-ns/work-unit accounting behind ``Observability.prof`` (the no-op
  :data:`~repro.obs.prof.profile.NULL_PROFILE` when profiling is off);
* :mod:`~repro.obs.prof.why` — ``repro obs why`` cross-run regression
  root-cause ranking over bench results, traces, or the bench history.

Isolation is enforced, not aspirational: lint rule DET111 rejects
tracemalloc / ``sys._current_frames`` / ``resource.getrusage`` reads in
rank-visible code outside functions marked ``# repro: host-prof``, and
the integration suite proves 1-vs-4-rank digests and recovery digests
are byte-identical with profiling enabled.  See ``docs/profiling.md``.
"""

from __future__ import annotations

from repro.obs.prof.memory import (
    SUBSYSTEMS,
    MemoryReport,
    MemoryTracker,
    subsystem_of,
)
from repro.obs.prof.profile import (
    NULL_PROFILE,
    HostProfile,
    NullProfile,
    PhaseRow,
    format_host_report,
    work_units_from_metrics,
)
from repro.obs.prof.sampler import HostSampler
from repro.obs.prof.why import (
    WhyFinding,
    WhyReport,
    load_side,
    why_bench,
    why_history,
    why_paths,
    why_trace,
)

__all__ = [
    "HostSampler",
    "MemoryTracker",
    "MemoryReport",
    "SUBSYSTEMS",
    "subsystem_of",
    "HostProfile",
    "NullProfile",
    "NULL_PROFILE",
    "PhaseRow",
    "format_host_report",
    "work_units_from_metrics",
    "WhyFinding",
    "WhyReport",
    "why_bench",
    "why_history",
    "why_trace",
    "why_paths",
    "load_side",
]
