"""tracemalloc-backed memory attribution (HOST-ONLY).

Maps traced Python-heap bytes to repo subsystems (``arch``, ``core``,
``runtime``, ``serve``, ``shard``, ...) by allocation filename, and
tracks per-phase allocation deltas across the tick loop via
:meth:`MemoryTracker.phase_delta` (driven by ``HostProfile.phase``).

Every tracemalloc read sits inside a ``# repro: host-prof`` function —
rule DET111 keeps profiler introspection out of the deterministic
rank-visible path.  Reports are host measurements: sizes vary with
interpreter version and allocator state, so nothing here feeds digests.
"""

from __future__ import annotations

import json
import tracemalloc
from dataclasses import dataclass
from pathlib import PurePath
from typing import Any

#: Subsystem buckets: top-level ``repro`` subpackages worth attributing.
SUBSYSTEMS = (
    "arch",
    "core",
    "runtime",
    "compiler",
    "serve",
    "shard",
    "obs",
    "resilience",
    "check",
    "perf",
    "cocomac",
    "apps",
    "util",
)


def subsystem_of(filename: str) -> str:
    """Bucket an allocation filename: ``repro`` subpackage, or ``external``.

    ``.../repro/core/simulator.py`` -> ``core``; ``.../repro/cli.py`` ->
    ``repro.other``; anything outside the package -> ``external``.
    """
    parts = PurePath(filename).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            if i + 1 < len(parts):
                head = parts[i + 1]
                name = head[:-3] if head.endswith(".py") else head
                if name in SUBSYSTEMS:
                    return name
            return "repro.other"
    return "external"


@dataclass(frozen=True)
class MemoryReport:
    """Snapshot of where traced bytes went, by subsystem and phase."""

    current_nbytes: int
    peak_nbytes: int
    #: (subsystem, nbytes, blocks), sorted by descending nbytes.
    subsystems: tuple[tuple[str, int, int], ...]
    #: (phase, summed allocation delta in bytes), insertion order.
    phase_deltas: tuple[tuple[str, int], ...]
    #: (phase, max traced-peak bytes observed at a phase boundary).
    phase_peaks: tuple[tuple[str, int], ...]

    def format(self) -> str:
        """Plain-text memory report (stable layout, host-valued cells)."""
        from repro.perf.report import format_table

        lines = ["# host memory report", ""]
        lines.append(f"current_nbytes: {self.current_nbytes}")
        lines.append(f"peak_nbytes: {self.peak_nbytes}")
        lines.append("")
        lines.append(
            format_table(
                ["subsystem", "nbytes", "blocks"],
                [list(row) for row in self.subsystems],
                title="== traced bytes by subsystem ==",
            )
        )
        if self.phase_deltas:
            lines.append("")
            peak_by_phase = dict(self.phase_peaks)
            lines.append(
                format_table(
                    ["phase", "delta_nbytes", "peak_nbytes"],
                    [
                        (phase, delta, peak_by_phase.get(phase, 0))
                        for phase, delta in self.phase_deltas
                    ],
                    title="== allocation delta by phase ==",
                )
            )
        return "\n".join(lines) + "\n"

    def to_json(self) -> str:
        payload: dict[str, Any] = {
            "schema": 1,
            "current_nbytes": self.current_nbytes,
            "peak_nbytes": self.peak_nbytes,
            "subsystems": [
                {"subsystem": s, "nbytes": b, "blocks": n}
                for s, b, n in self.subsystems
            ],
            "phase_deltas": [
                {"phase": p, "delta_nbytes": d} for p, d in self.phase_deltas
            ],
            "phase_peaks": [
                {"phase": p, "peak_nbytes": b} for p, b in self.phase_peaks
            ],
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"


class MemoryTracker:
    """Start/stop wrapper over tracemalloc with phase-delta attribution.

    If tracemalloc is already tracing (e.g. under the bench meter), the
    tracker piggybacks and leaves it running on :meth:`stop`; otherwise it
    owns the start/stop pair.  ``nframes=1`` keeps overhead at the
    filename granularity the subsystem mapping needs.
    """

    def __init__(self, nframes: int = 1) -> None:
        self.nframes = int(nframes)
        self.tracking = False
        self._started_here = False
        self._last_current = 0
        self._phase_deltas: dict[str, int] = {}
        self._phase_peaks: dict[str, int] = {}

    # repro: host-prof
    def start(self) -> "MemoryTracker":
        """Begin (or join) tracemalloc tracing; resets the peak marker."""
        if self.tracking:
            return self
        self._started_here = not tracemalloc.is_tracing()
        if self._started_here:
            tracemalloc.start(self.nframes)
        tracemalloc.reset_peak()
        self._last_current = tracemalloc.get_traced_memory()[0]
        self._phase_deltas = {}
        self._phase_peaks = {}
        self.tracking = True
        return self

    # repro: host-prof
    def phase_delta(self, phase: str) -> int:
        """Attribute allocations since the previous boundary to ``phase``."""
        if not self.tracking:
            return 0
        current, peak = tracemalloc.get_traced_memory()
        delta = current - self._last_current
        self._last_current = current
        self._phase_deltas[phase] = self._phase_deltas.get(phase, 0) + delta
        if peak > self._phase_peaks.get(phase, 0):
            self._phase_peaks[phase] = peak
        return delta

    # repro: host-prof
    def stop(self) -> MemoryReport:
        """Finalize: snapshot, bucket by subsystem, release tracing if owned."""
        if not self.tracking:
            return MemoryReport(0, 0, (), (), ())
        current, peak = tracemalloc.get_traced_memory()
        buckets: dict[str, list[int]] = {}
        for stat in tracemalloc.take_snapshot().statistics("filename"):
            name = subsystem_of(stat.traceback[0].filename)
            entry = buckets.setdefault(name, [0, 0])
            entry[0] += stat.size
            entry[1] += stat.count
        if self._started_here:
            tracemalloc.stop()
        self.tracking = False
        subsystems = tuple(
            (name, nbytes, blocks)
            for name, (nbytes, blocks) in sorted(
                buckets.items(), key=lambda kv: (-kv[1][0], kv[0])
            )
        )
        return MemoryReport(
            current_nbytes=current,
            peak_nbytes=peak,
            subsystems=subsystems,
            phase_deltas=tuple(self._phase_deltas.items()),
            phase_peaks=tuple(self._phase_peaks.items()),
        )
