"""``repro obs why``: automated cross-run regression root-cause.

Given two comparable measurements — two bench-result sets
(``BENCH_*.json`` files or directories), two deterministic trace event
logs, or the last two blessed entries per bench in
``bench_history.jsonl`` — rank every phase/rank/metric by its
contribution to the delta and name the top contributor as the root
cause.  Bench metrics are ranked by relative change (units differ
across metrics), gated lower-is-better regressions first; trace diffs
are ranked by share of the total work-unit delta (one common unit).

Everything here is offline analysis of recorded artifacts; it never
runs a simulation and is deterministic given identical inputs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import AnalysisError


@dataclass(frozen=True)
class WhyFinding:
    """One ranked contributor to a cross-run delta."""

    scope: str  # bench name, or flame root like "rank 0"
    metric: str  # metric name, or "phase;subphase" stack path
    old: float
    new: float
    gated: bool  # lower-is-better metric the perf gate enforces

    @property
    def delta(self) -> float:
        return self.new - self.old

    @property
    def rel(self) -> float:
        """Relative change vs old (signed; inf when appearing from 0)."""
        if self.old:
            return self.delta / abs(self.old)
        return float("inf") if self.delta > 0 else (-float("inf") if self.delta < 0 else 0.0)

    @property
    def direction(self) -> str:
        if self.delta > 0:
            return "regressed" if self.gated else "increased"
        if self.delta < 0:
            return "improved" if self.gated else "decreased"
        return "unchanged"


@dataclass(frozen=True)
class WhyReport:
    """Ranked findings plus the share each takes of the total |delta|."""

    kind: str  # "bench" | "trace" | "history"
    findings: tuple[WhyFinding, ...]

    @property
    def top(self) -> WhyFinding | None:
        return self.findings[0] if self.findings else None

    def shares(self) -> list[float]:
        """|delta| share per finding — comparable only in trace mode."""
        total = sum(abs(f.delta) for f in self.findings)
        if not total:
            return [0.0 for _ in self.findings]
        return [abs(f.delta) / total for f in self.findings]

    def format(self, limit: int = 20) -> str:
        from repro.perf.report import format_table

        lines = [f"# regression root-cause ({self.kind} diff)", ""]
        if not self.findings:
            lines.append("no comparable (scope, metric) pairs between the runs")
            return "\n".join(lines) + "\n"
        shares = self.shares()
        rows = []
        for finding, share in list(zip(self.findings, shares))[:limit]:
            rel = finding.rel
            rel_text = f"{rel:+.1%}" if abs(rel) != float("inf") else "new"
            rows.append(
                (
                    finding.scope,
                    finding.metric,
                    f"{finding.old:.6g}",
                    f"{finding.new:.6g}",
                    f"{finding.delta:+.6g}",
                    rel_text,
                    f"{share:.1%}",
                    finding.direction,
                )
            )
        title = "== contributors, ranked =="
        if len(self.findings) > limit:
            title += f" (top {limit} of {len(self.findings)})"
        lines.append(
            format_table(
                ["scope", "metric", "old", "new", "delta", "rel", "share", "status"],
                rows,
                title=title,
            )
        )
        lines.append("")
        top = self.top
        regressions = [f for f in self.findings if f.gated and f.delta > 0]
        if regressions:
            cause = regressions[0]
            rel_text = f"{cause.rel:+.1%}" if abs(cause.rel) != float("inf") else "new"
            lines.append(
                f"root cause: {cause.scope} / {cause.metric} "
                f"({cause.old:.6g} -> {cause.new:.6g}, {rel_text})"
            )
        elif top is not None and top.delta != 0:
            lines.append(
                f"largest shift: {top.scope} / {top.metric} "
                f"({top.old:.6g} -> {top.new:.6g})"
            )
        else:
            lines.append("no regression: runs are metric-identical")
        return "\n".join(lines) + "\n"


def _rank_bench(findings: list[WhyFinding]) -> tuple[WhyFinding, ...]:
    """Gated regressions first by relative severity, then everything else."""
    return tuple(
        sorted(
            findings,
            key=lambda f: (
                not (f.gated and f.delta > 0),
                -abs(f.rel),
                f.scope,
                f.metric,
            ),
        )
    )


def _bench_metrics(payloads: list[dict[str, Any]]) -> dict[tuple[str, str], float]:
    from repro.obs.analysis.history import record_from_bench

    metrics: dict[tuple[str, str], float] = {}
    for payload in payloads:
        record = record_from_bench(payload)
        for metric, value in record["metrics"].items():
            metrics[(record["name"], metric)] = value
    return metrics


def why_bench(
    old_payloads: list[dict[str, Any]], new_payloads: list[dict[str, Any]]
) -> WhyReport:
    """Diff two bench-result sets metric by metric."""
    from repro.obs.analysis.regress import is_gated

    old = _bench_metrics(old_payloads)
    new = _bench_metrics(new_payloads)
    common = sorted(set(old) & set(new))
    if not common:
        raise AnalysisError(
            "the two bench-result sets share no (bench, metric) pairs"
        )
    findings = [
        WhyFinding(scope=name, metric=metric, old=old[key], new=new[key],
                   gated=is_gated(metric))
        for key in common
        for name, metric in [key]
    ]
    return WhyReport(kind="bench", findings=_rank_bench(findings))


def why_history(records: list[dict[str, Any]]) -> WhyReport:
    """Diff the last two history entries per (bench, fingerprint, metric)."""
    from repro.obs.analysis.regress import is_gated

    series: dict[tuple[str, str, str], list[float]] = {}
    for rec in records:
        name = str(rec.get("name", ""))
        fingerprint = str(rec.get("fingerprint", ""))
        for metric, value in sorted((rec.get("metrics") or {}).items()):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                series.setdefault((name, fingerprint, metric), []).append(
                    float(value)
                )
    findings = [
        WhyFinding(scope=name, metric=metric, old=values[-2], new=values[-1],
                   gated=is_gated(metric))
        for (name, _fp, metric), values in sorted(series.items())
        if len(values) >= 2
    ]
    if not findings:
        raise AnalysisError(
            "history has no (bench, fingerprint, metric) with >= 2 entries"
        )
    return WhyReport(kind="history", findings=_rank_bench(findings))


def why_trace(
    old_events: list[dict[str, Any]], new_events: list[dict[str, Any]]
) -> WhyReport:
    """Diff two deterministic trace logs by folded work-unit stacks.

    Both sides share one unit (work units), so findings are ranked by
    absolute delta — share of the total shift — with the rank/cluster
    flame root as the scope.
    """
    from repro.obs.analysis.flame import fold_stacks

    old = fold_stacks(old_events)
    new = fold_stacks(new_events)
    findings = []
    for path in sorted(set(old) | set(new)):
        root, _, rest = path.partition(";")
        findings.append(
            WhyFinding(
                scope=root,
                metric=rest or root,
                old=float(old.get(path, 0)),
                new=float(new.get(path, 0)),
                gated=True,  # work units are uniformly lower-is-better
            )
        )
    if not findings:
        raise AnalysisError("neither trace contains phase spans to fold")
    ranked = tuple(
        sorted(
            findings,
            key=lambda f: (-abs(f.delta), f.scope, f.metric),
        )
    )
    return WhyReport(kind="trace", findings=ranked)


def _looks_like_bench_payload(record: dict[str, Any]) -> bool:
    return "name" in record and ("stats" in record or "derived" in record)


def load_side(path: str | Path) -> tuple[str, Any]:
    """Classify one ``repro obs why`` operand: bench dir/file or trace log.

    Returns ``("bench", payloads)`` or ``("trace", events)``; raises
    :class:`AnalysisError` for anything unrecognizable.
    """
    from repro.obs.analysis import load_events, require_file
    from repro.obs.analysis.history import load_bench_results

    path = Path(path)
    if path.is_dir():
        return "bench", load_bench_results(path)
    require_file(path, "bench/trace")
    if path.suffix == ".jsonl":
        return "trace", load_events(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"{path}: not valid JSON: {exc}") from exc
    if isinstance(payload, dict) and _looks_like_bench_payload(payload):
        return "bench", [payload]
    raise AnalysisError(
        f"{path}: not a bench payload or trace log "
        "(expected BENCH_*.json, a results directory, or an events .jsonl)"
    )


def why_paths(old_path: str | Path, new_path: str | Path) -> WhyReport:
    """Dispatch ``repro obs why OLD NEW`` on the operand kinds."""
    old_kind, old_data = load_side(old_path)
    new_kind, new_data = load_side(new_path)
    if old_kind != new_kind:
        raise AnalysisError(
            f"cannot diff {old_kind} ({old_path}) against {new_kind} "
            f"({new_path}); both sides must be bench results or both traces"
        )
    if old_kind == "bench":
        return why_bench(old_data, new_data)
    return why_trace(old_data, new_data)
