"""Host-cost accounting per phase/rank and the divergence report.

:class:`HostProfile` is the aggregation point of the host-side profiling
layer (HOST-ONLY): simulators and the compiler call :meth:`HostProfile.phase`
with the host seconds a phase segment cost on a given rank, plus the same
integer event counts the span tracer records.  Work units are derived with
the exact :func:`repro.obs.analysis.critical.span_cost` weights, so
``host_ns / work_unit`` is directly comparable against the simulated-clock
flame and critical-path analytics.

The resulting *host-cost divergence report* answers the question the
ROADMAP's SoA kernel refactor needs answered: which phase (and which rank)
pays the most interpreter nanoseconds per unit of modelled work.  Nothing
here may feed rank-visible state — the profile is attached to
``Observability.prof`` and defaults to the shared no-op
:data:`NULL_PROFILE`, so the deterministic path is untouched when
profiling is off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

_span_cost = None


def _cost(name: str, counts: Mapping[str, Any]) -> int:
    """Work units for a phase segment (lazy import avoids an obs cycle)."""
    global _span_cost
    if _span_cost is None:
        from repro.obs.analysis.critical import span_cost

        _span_cost = span_cost
    return _span_cost(name, counts)


def work_units_from_metrics(metrics: Any) -> int:
    """Run-total work units from a :class:`~repro.core.metrics.RunMetrics`.

    Mirrors the leading terms of the per-span weights in
    :data:`repro.obs.analysis.critical.PHASE_WEIGHTS` (synapse scales with
    active axons, neuron with fired spikes, network with a per-message
    critical section plus per-spike delivery) plus the baseline unit every
    span costs — four phase spans (synapse, neuron, sync, network) per
    rank-tick — so bench-level ``host_ns_per_work_unit`` values line up
    with the per-phase divergence report even for quiescent runs that
    fire nothing.
    """
    return int(
        4 * metrics.ticks * metrics.n_ranks
        + metrics.total_active_axons
        + 4 * metrics.total_fired
        + 2 * metrics.total_remote_spikes
        + 16 * metrics.total_messages
        + metrics.total_local_spikes
        + metrics.total_remote_spikes
    )


class NullProfile:
    """Shared no-op profile: the default on every ``Observability``."""

    enabled = False
    sampler = None
    memory = None
    mem_report = None

    def phase(self, name: str, rank: int, host_s: float, **counts: Any) -> None:
        return None

    def rows(self) -> list["PhaseRow"]:
        return []

    def folded(self) -> dict[str, int]:
        return {}


#: The one shared no-op instance (identity-comparable, like NULL_TRACER).
NULL_PROFILE = NullProfile()


@dataclass(frozen=True)
class PhaseRow:
    """Aggregated host cost of one (phase, rank) pair."""

    phase: str
    rank: int
    host_ns: int
    work_units: int
    calls: int

    @property
    def ns_per_work_unit(self) -> float:
        return self.host_ns / self.work_units if self.work_units else float(self.host_ns)


class HostProfile:
    """Mutable host-cost accumulator with optional sampler/memory attach.

    ``sampler`` (a :class:`~repro.obs.prof.sampler.HostSampler`) and
    ``memory`` (a :class:`~repro.obs.prof.memory.MemoryTracker`) are
    started/stopped with the profile; :meth:`phase` additionally feeds the
    memory tracker so allocation deltas are attributed to phases.
    """

    enabled = True

    def __init__(self, sampler: Any = None, memory: Any = None) -> None:
        self.sampler = sampler
        self.memory = memory
        self.mem_report = None
        # (phase, rank) -> [host_ns, work_units, calls]
        self._phases: dict[tuple[str, int], list[int]] = {}

    def start(self) -> "HostProfile":
        if self.sampler is not None:
            self.sampler.start()
        if self.memory is not None:
            self.memory.start()
        return self

    def stop(self) -> "HostProfile":
        if self.sampler is not None:
            self.sampler.stop()
        if self.memory is not None:
            self.mem_report = self.memory.stop()
        return self

    def __enter__(self) -> "HostProfile":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def phase(
        self,
        name: str,
        rank: int,
        host_s: float,
        work: int | None = None,
        **counts: Any,
    ) -> None:
        """Record ``host_s`` host seconds of phase ``name`` on ``rank``.

        ``counts`` are the span-attribute event counts (``fired``,
        ``messages``, ...); ``work`` overrides the derived work units for
        segments without span weights (e.g. compiler phases).
        """
        if work is None:
            work = _cost(name, counts)
        rec = self._phases.setdefault((name, int(rank)), [0, 0, 0])
        rec[0] += max(0, int(host_s * 1e9))
        rec[1] += int(work)
        rec[2] += 1
        if self.memory is not None:
            self.memory.phase_delta(name)

    def rows(self) -> list[PhaseRow]:
        """Per-(phase, rank) aggregates, sorted by descending ns/work-unit."""
        rows = [
            PhaseRow(phase=p, rank=r, host_ns=ns, work_units=wu, calls=n)
            for (p, r), (ns, wu, n) in self._phases.items()
        ]
        rows.sort(key=lambda row: (-row.ns_per_work_unit, row.phase, row.rank))
        return rows

    @property
    def total_host_ns(self) -> int:
        # repro: allow[DET103] integer sum is order-independent.
        return sum(ns for ns, _, _ in self._phases.values())

    @property
    def total_work_units(self) -> int:
        # repro: allow[DET103] integer sum is order-independent.
        return sum(wu for _, wu, _ in self._phases.values())

    def host_ns_per_work_unit(self) -> float:
        """Run-level mean host cost per work unit (0.0 when no work)."""
        wu = self.total_work_units
        return self.total_host_ns / wu if wu else 0.0

    def folded(self) -> dict[str, int]:
        """Folded host stacks from the attached sampler ({} when absent)."""
        return self.sampler.folded() if self.sampler is not None else {}


def format_host_report(profile: HostProfile, limit: int = 40) -> str:
    """Deterministic-format host-cost divergence report.

    The *values* are host measurements and vary run to run; the layout is
    stable so reports diff cleanly.  Rows are ranked by ns/work-unit —
    the top row is where interpreter overhead diverges most from the
    modelled cost, i.e. the first target for the SoA kernel refactor.
    """
    from repro.perf.report import format_table

    rows = profile.rows()
    mean = profile.host_ns_per_work_unit()
    table_rows = [
        (
            row.phase,
            row.rank,
            row.calls,
            row.work_units,
            row.host_ns,
            f"{row.ns_per_work_unit:.1f}",
            f"{row.ns_per_work_unit / mean:.2f}x" if mean else "n/a",
        )
        for row in rows[:limit]
    ]
    title = "== host-cost divergence (ns per work unit) =="
    if len(rows) > limit:
        title += f" (top {limit} of {len(rows)})"
    lines = ["# host profile", ""]
    lines.append(
        format_table(
            ["phase", "rank", "calls", "work_units", "host_ns", "ns_per_wu", "vs_mean"],
            table_rows,
            title=title,
        )
    )
    lines.append("")
    lines.append(f"total host_ns: {profile.total_host_ns}")
    lines.append(f"total work_units: {profile.total_work_units}")
    lines.append(f"host_ns_per_work_unit: {mean:.1f}")
    if rows:
        top = rows[0]
        lines.append(
            f"divergence hotspot: {top.phase} (rank {top.rank}) at "
            f"{top.ns_per_work_unit:.1f} ns/wu"
        )
    if profile.sampler is not None:
        lines.append(f"sampler: {profile.sampler.samples} samples @ {profile.sampler.hz:g} Hz")
    if profile.mem_report is not None:
        lines.append("")
        lines.append(profile.mem_report.format())
    return "\n".join(lines) + "\n"
