"""Chrome-trace / Perfetto JSON exporter.

Emits the classic ``traceEvents`` JSON that both ``chrome://tracing`` and
https://ui.perfetto.dev load directly.  Track layout:

* pid 0 — the simulator: one thread row per rank (tid = rank + 1) plus a
  ``cluster`` row (tid 0) for whole-tick and resilience events;
* pid 1 — the PCC compiler (events with ``cat == "compile"``).

Fault and recovery events are instant (``ph == "i"``) marks; phase spans
are complete (``X``) events.  Timestamps are simulated microseconds (see
``repro.obs.span``), so the rendered timeline is bit-deterministic.

:func:`validate_chrome_trace` is a dependency-free structural validator
used by the test suite and CI (the container has no ``jsonschema``); it
checks the invariants the trace-event format requires rather than a full
JSON-Schema document.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.span import NullTracer, SpanTracer, TraceEvent

_COMPILE_PID = 1
_SIM_PID = 0

#: Phase letters this exporter emits / the validator accepts.
_KNOWN_PHASES = frozenset({"X", "B", "E", "i", "M", "C", "s", "t", "f"})

#: Flow-event phases (start / step / finish of one logical journey).
_FLOW_PHASES = frozenset({"s", "t", "f"})


def _tid(event: TraceEvent) -> int:
    # tid 0 is the cluster-wide track; ranks shift up by one.
    return 0 if event.rank < 0 else event.rank + 1


def _pid(event: TraceEvent) -> int:
    return _COMPILE_PID if event.cat == "compile" else _SIM_PID


def to_chrome_trace(
    tracer: SpanTracer | NullTracer, label: str = "compass"
) -> dict[str, Any]:
    """Convert recorded events to a Chrome-trace JSON object."""
    events: list[dict[str, Any]] = []
    tracks: set[tuple[int, int, int]] = set()

    for ev in tracer.events:
        pid, tid = _pid(ev), _tid(ev)
        tracks.add((pid, tid, ev.rank))
        record: dict[str, Any] = {
            "name": ev.name,
            "cat": ev.cat,
            "ph": ev.ph,
            "ts": ev.ts_us,
            "pid": pid,
            "tid": tid,
        }
        if ev.ph == "X":
            record["dur"] = ev.dur_us
        if ev.ph == "i":
            record["s"] = "t"  # thread-scoped instant
        args = dict(ev.args)
        if ev.ph in _FLOW_PHASES:
            # SpanTracer.flow carries the id in args; the trace-event
            # format wants it top-level.  bp="e" binds the arrow to the
            # enclosing slice rather than the next one.
            record["id"] = args.pop("flow", "")
            record["bp"] = "e"
        args["tick"] = ev.tick
        if ev.thread:
            args["omp_thread"] = ev.thread
        record["args"] = args
        events.append(record)

    # Stable sort: by timestamp, longest span first at equal ts so that
    # enclosing X events precede the sub-spans they contain.
    events.sort(key=lambda r: (r["ts"], -r.get("dur", 0.0)))

    meta: list[dict[str, Any]] = []
    pids = sorted({pid for pid, _, _ in tracks})
    for pid in pids:
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": f"{label} simulator"
                    if pid == _SIM_PID
                    else f"{label} pcc compiler"
                },
            }
        )
    for pid, tid, rank in sorted(tracks):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": "cluster" if rank < 0 else f"rank {rank}"},
            }
        )
        meta.append(
            {"name": "thread_sort_index", "ph": "M", "pid": pid, "tid": tid,
             "args": {"sort_index": tid}}
        )

    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"format": "repro.obs chrome-trace", "clock": "simulated-us"},
    }


def validate_chrome_trace(obj: Any) -> list[str]:
    """Structural validation against the trace-event format; [] when valid.

    Beyond the per-event field checks, this validates flow-event causality:
    every flow id must have exactly one start (``s``) and one finish
    (``f``) with ``s`` no later than ``f``, steps (``t``) require a start,
    and each flow event must coincide with a slice (``X`` interval or a
    ``B``/``E`` pair) on its (pid, tid) track so viewers can bind the
    arrow to an enclosing span.
    """
    errors: list[str] = []
    if not isinstance(obj, dict):
        return ["top-level value must be a JSON object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    open_stacks: dict[tuple[int, int], list[float]] = {}
    #: Slice intervals [t0, t1] per track, from X events and B/E pairs.
    slices: dict[tuple[int, int], list[tuple[float, float]]] = {}
    #: (cat, id) -> list of (ph, ts, track, index) flow events.
    flows: dict[tuple[str, str], list[tuple[str, float, tuple[int, int], int]]] = {}
    last_ts: float | None = None
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                errors.append(f"{where}: missing integer {field!r}")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            errors.append(f"{where}: missing event name")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
        else:
            # The exporter sorts events by timestamp; an out-of-order ts
            # means the trace was edited or produced by a buggy writer.
            if last_ts is not None and ts < last_ts:
                errors.append(
                    f"{where}: timestamp out of order ({ts} after {last_ts})"
                )
            last_ts = ts
        track = (ev.get("pid", 0), ev.get("tid", 0))
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: 'X' event needs non-negative 'dur'")
            elif isinstance(ts, (int, float)):
                slices.setdefault(track, []).append((ts, ts + dur))
        if ph in _FLOW_PHASES:
            flow_id = ev.get("id")
            if not isinstance(flow_id, (str, int)) or flow_id == "":
                errors.append(f"{where}: flow event needs a non-empty 'id'")
            elif isinstance(ts, (int, float)):
                key = (str(ev.get("cat", "")), str(flow_id))
                flows.setdefault(key, []).append((ph, ts, track, i))
        if ph == "B":
            if isinstance(ts, (int, float)):
                open_stacks.setdefault(track, []).append(ts)
        elif ph == "E":
            stack = open_stacks.get(track, [])
            if not stack:
                errors.append(f"{where}: 'E' event without matching 'B' on {track}")
            elif isinstance(ts, (int, float)):
                slices.setdefault(track, []).append((stack.pop(), ts))
    for track in sorted(open_stacks):
        if open_stacks[track]:
            errors.append(
                f"unclosed 'B' event(s) on track pid={track[0]} tid={track[1]}"
            )
    errors.extend(_validate_flows(flows, slices))
    return errors


def _validate_flows(
    flows: dict[tuple[str, str], list[tuple[str, float, tuple[int, int], int]]],
    slices: dict[tuple[int, int], list[tuple[float, float]]],
) -> list[str]:
    """Flow pairing and slice-binding checks over the collected events."""
    errors: list[str] = []
    for (cat, flow_id), parts in sorted(flows.items()):
        label = f"flow (cat={cat!r}, id={flow_id!r})"
        starts = [p for p in parts if p[0] == "s"]
        finishes = [p for p in parts if p[0] == "f"]
        if len(starts) != 1:
            errors.append(f"{label}: {len(starts)} 's' events (need exactly 1)")
        if len(finishes) != 1:
            errors.append(f"{label}: {len(finishes)} 'f' events (need exactly 1)")
        if len(starts) == 1 and len(finishes) == 1:
            s_ts, f_ts = starts[0][1], finishes[0][1]
            if s_ts > f_ts:
                errors.append(
                    f"{label}: 's' at {s_ts} is later than 'f' at {f_ts}"
                )
            for ph, ts, _, idx in parts:
                if ph == "t" and not (s_ts <= ts <= f_ts):
                    errors.append(
                        f"traceEvents[{idx}]: {label} step at {ts} outside "
                        f"its [{s_ts}, {f_ts}] span"
                    )
        for ph, ts, track, idx in parts:
            enclosed = any(
                t0 <= ts <= t1 for t0, t1 in slices.get(track, ())
            )
            if not enclosed:
                errors.append(
                    f"traceEvents[{idx}]: {label} '{ph}' event not enclosed "
                    f"by any slice on track pid={track[0]} tid={track[1]}"
                )
    return errors


def write_chrome_trace(  # repro: obs-flush
    tracer: SpanTracer | NullTracer, path: str | Path, label: str = "compass"
) -> Path:
    """Serialise the trace to ``path``; the obs flush boundary for Perfetto."""
    path = Path(path)
    trace = to_chrome_trace(tracer, label=label)
    path.write_text(json.dumps(trace, sort_keys=True) + "\n")
    return path
