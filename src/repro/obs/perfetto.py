"""Chrome-trace / Perfetto JSON exporter.

Emits the classic ``traceEvents`` JSON that both ``chrome://tracing`` and
https://ui.perfetto.dev load directly.  Track layout:

* pid 0 — the simulator: one thread row per rank (tid = rank + 1) plus a
  ``cluster`` row (tid 0) for whole-tick and resilience events;
* pid 1 — the PCC compiler (events with ``cat == "compile"``).

Fault and recovery events are instant (``ph == "i"``) marks; phase spans
are complete (``X``) events.  Timestamps are simulated microseconds (see
``repro.obs.span``), so the rendered timeline is bit-deterministic.

:func:`validate_chrome_trace` is a dependency-free structural validator
used by the test suite and CI (the container has no ``jsonschema``); it
checks the invariants the trace-event format requires rather than a full
JSON-Schema document.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.span import NullTracer, SpanTracer, TraceEvent

_COMPILE_PID = 1
_SIM_PID = 0

#: Phase letters this exporter emits / the validator accepts.
_KNOWN_PHASES = frozenset({"X", "B", "E", "i", "M", "C"})


def _tid(event: TraceEvent) -> int:
    # tid 0 is the cluster-wide track; ranks shift up by one.
    return 0 if event.rank < 0 else event.rank + 1


def _pid(event: TraceEvent) -> int:
    return _COMPILE_PID if event.cat == "compile" else _SIM_PID


def to_chrome_trace(
    tracer: SpanTracer | NullTracer, label: str = "compass"
) -> dict[str, Any]:
    """Convert recorded events to a Chrome-trace JSON object."""
    events: list[dict[str, Any]] = []
    tracks: set[tuple[int, int, int]] = set()

    for ev in tracer.events:
        pid, tid = _pid(ev), _tid(ev)
        tracks.add((pid, tid, ev.rank))
        record: dict[str, Any] = {
            "name": ev.name,
            "cat": ev.cat,
            "ph": ev.ph,
            "ts": ev.ts_us,
            "pid": pid,
            "tid": tid,
        }
        if ev.ph == "X":
            record["dur"] = ev.dur_us
        if ev.ph == "i":
            record["s"] = "t"  # thread-scoped instant
        args = dict(ev.args)
        args["tick"] = ev.tick
        if ev.thread:
            args["omp_thread"] = ev.thread
        record["args"] = args
        events.append(record)

    # Stable sort: by timestamp, longest span first at equal ts so that
    # enclosing X events precede the sub-spans they contain.
    events.sort(key=lambda r: (r["ts"], -r.get("dur", 0.0)))

    meta: list[dict[str, Any]] = []
    pids = sorted({pid for pid, _, _ in tracks})
    for pid in pids:
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": f"{label} simulator"
                    if pid == _SIM_PID
                    else f"{label} pcc compiler"
                },
            }
        )
    for pid, tid, rank in sorted(tracks):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": "cluster" if rank < 0 else f"rank {rank}"},
            }
        )
        meta.append(
            {"name": "thread_sort_index", "ph": "M", "pid": pid, "tid": tid,
             "args": {"sort_index": tid}}
        )

    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"format": "repro.obs chrome-trace", "clock": "simulated-us"},
    }


def validate_chrome_trace(obj: Any) -> list[str]:
    """Structural validation against the trace-event format; [] when valid."""
    errors: list[str] = []
    if not isinstance(obj, dict):
        return ["top-level value must be a JSON object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    open_stacks: dict[tuple[int, int], int] = {}
    last_ts: float | None = None
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                errors.append(f"{where}: missing integer {field!r}")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            errors.append(f"{where}: missing event name")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
        else:
            # The exporter sorts events by timestamp; an out-of-order ts
            # means the trace was edited or produced by a buggy writer.
            if last_ts is not None and ts < last_ts:
                errors.append(
                    f"{where}: timestamp out of order ({ts} after {last_ts})"
                )
            last_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: 'X' event needs non-negative 'dur'")
        track = (ev.get("pid", 0), ev.get("tid", 0))
        if ph == "B":
            open_stacks[track] = open_stacks.get(track, 0) + 1
        elif ph == "E":
            depth = open_stacks.get(track, 0)
            if depth <= 0:
                errors.append(f"{where}: 'E' event without matching 'B' on {track}")
            else:
                open_stacks[track] = depth - 1
    for track in sorted(open_stacks):
        if open_stacks[track] > 0:
            errors.append(
                f"unclosed 'B' event(s) on track pid={track[0]} tid={track[1]}"
            )
    return errors


def write_chrome_trace(  # repro: obs-flush
    tracer: SpanTracer | NullTracer, path: str | Path, label: str = "compass"
) -> Path:
    """Serialise the trace to ``path``; the obs flush boundary for Perfetto."""
    path = Path(path)
    trace = to_chrome_trace(tracer, label=label)
    path.write_text(json.dumps(trace, sort_keys=True) + "\n")
    return path
