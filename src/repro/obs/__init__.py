"""Unified observability layer: deterministic tracing, metrics, exporters.

One :class:`Observability` object travels with a virtual cluster and
bundles the two instrument surfaces:

* ``obs.tracer`` — a :class:`~repro.obs.span.SpanTracer` recording phase
  spans, message instants, and fault events on the simulated timeline
  (or the shared no-op :data:`~repro.obs.span.NULL_TRACER` when off);
* ``obs.registry`` — a :class:`~repro.obs.registry.MetricRegistry` of
  counters/gauges/histograms with per-rank and cluster-reduced views.

The registry is always live (it backs ``repro run --profile``); tracing
is opt-in because it records an event stream.  Exporters
(:mod:`~repro.obs.perfetto`, :mod:`~repro.obs.prometheus`,
:mod:`~repro.obs.jsonl`) are the only sanctioned file-writing boundary
for observability data — lint rule DET107 enforces that rank-visible
code never writes files outside functions marked ``# repro: obs-flush``.

The analytics that *interpret* the recorded streams — critical-path
extraction, flame folding, imbalance heatmaps, and the perf-regression
gate — live in the :mod:`repro.obs.analysis` subpackage (imported
explicitly; see ``docs/perf_analysis.md``).

A third, host-side surface is ``obs.prof`` — a
:class:`~repro.obs.prof.profile.HostProfile` (sampling profiler,
tracemalloc attribution, host-ns-per-work-unit accounting) or the shared
no-op :data:`~repro.obs.prof.profile.NULL_PROFILE` when profiling is
off.  It measures the host and never feeds rank-visible state (lint
rule DET111; see ``docs/profiling.md``).
"""

from __future__ import annotations

from repro.obs.jsonl import (
    Divergence,
    event_record,
    first_divergence,
    iter_lines,
    read_event_log,
    write_event_log,
)
from repro.obs.perfetto import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.prof.profile import NULL_PROFILE, HostProfile, NullProfile
from repro.obs.prometheus import render_textfile, write_textfile
from repro.obs.registry import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.span import (
    NULL_TRACER,
    PHASES,
    SEQ_DT_US,
    TICK_US,
    NullTracer,
    SpanTracer,
    TraceEvent,
)


class Observability:
    """Tracer + registry bundle attached to one virtual cluster."""

    def __init__(
        self,
        tracer: SpanTracer | NullTracer | None = None,
        registry: MetricRegistry | None = None,
        prof: HostProfile | NullProfile | None = None,
    ) -> None:
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.registry = MetricRegistry() if registry is None else registry
        self.prof = NULL_PROFILE if prof is None else prof

    @classmethod
    def off(cls) -> "Observability":
        """Metrics only — the default for every simulator."""
        return cls()

    @classmethod
    def with_tracing(cls) -> "Observability":
        """Metrics plus a live span tracer."""
        return cls(tracer=SpanTracer())

    @classmethod
    def with_profiling(
        cls,
        hz: float = 97.0,
        sampler: bool = True,
        memory: bool = True,
        tracing: bool = False,
    ) -> "Observability":
        """Metrics plus a host profiler (and optionally a span tracer).

        The profiler must still be started/stopped around the measured
        region (``obs.prof.start()`` / ``obs.prof.stop()``); attaching it
        here only routes the simulators' opt-in phase hooks to it.
        """
        from repro.obs.prof import HostSampler, MemoryTracker

        prof = HostProfile(
            sampler=HostSampler(hz=hz) if sampler else None,
            memory=MemoryTracker() if memory else None,
        )
        return cls(tracer=SpanTracer() if tracing else None, prof=prof)

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    @property
    def profiling(self) -> bool:
        return self.prof.enabled


__all__ = [
    "Observability",
    "HostProfile",
    "NullProfile",
    "NULL_PROFILE",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "TICK_US",
    "SEQ_DT_US",
    "PHASES",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "render_textfile",
    "write_textfile",
    "event_record",
    "iter_lines",
    "write_event_log",
    "read_event_log",
    "first_divergence",
    "Divergence",
]
