"""JSONL event log with first-divergence-friendly stable ordering.

Each trace event becomes one JSON object per line, keys sorted, floats
untouched (they are exact sums of exact increments — see
``repro.obs.span``).  Records appear in emission order, which for a
deterministic simulation is itself deterministic, so two runs of the
same configuration produce *byte-identical* logs and the first differing
line localises the first behavioural divergence.

The internal sequence counter is deliberately excluded from records:
cross-layout comparisons (1 rank vs 4 ranks) filter to the cluster-track
``tick`` summary events, whose fixed timestamps and partition-invariant
attributes match across rank counts (see docs/observability.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.obs.span import NullTracer, SpanTracer, TraceEvent


def event_record(event: TraceEvent) -> dict[str, Any]:
    """The canonical JSON-ready dict for one event."""
    return {
        "name": event.name,
        "cat": event.cat,
        "ph": event.ph,
        "ts": event.ts_us,
        "dur": event.dur_us,
        "rank": event.rank,
        "thread": event.thread,
        "tick": event.tick,
        "args": dict(event.args),
    }


def iter_lines(tracer: SpanTracer | NullTracer) -> Iterator[str]:
    """Canonical one-line serialisations, in deterministic emission order."""
    for event in tracer.events:
        yield json.dumps(event_record(event), sort_keys=True)


def write_event_log(  # repro: obs-flush
    tracer: SpanTracer | NullTracer, path: str | Path
) -> Path:
    """Write the JSONL log to ``path``; the obs flush boundary."""
    path = Path(path)
    text = "\n".join(iter_lines(tracer))
    path.write_text(text + "\n" if text else "")
    return path


def read_event_log(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL event log back into record dicts."""
    records: list[dict[str, Any]] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not a JSON record: {exc}") from exc
    return records


@dataclass(frozen=True)
class Divergence:
    """Where two event streams first disagree.

    ``index`` is the position in the (filtered) record sequence; one of
    ``a``/``b`` is None when a log is a strict prefix of the other.
    """

    index: int
    a: dict[str, Any] | None
    b: dict[str, Any] | None

    @property
    def tick(self) -> int:
        for rec in (self.a, self.b):
            if rec is not None:
                return int(rec.get("tick", -1))
        return -1

    @staticmethod
    def _label(rec: dict[str, Any]) -> str:
        """Short identity of one record: event name, or rollup/alert key."""
        if "name" in rec:
            return repr(rec.get("name"))
        kind = rec.get("kind", "record")
        return (
            f"{kind}[window={rec.get('window')}, scope={rec.get('scope')}, "
            f"shard={rec.get('shard')}]"
        )

    @staticmethod
    def _where(rec: dict[str, Any]) -> str:
        """Locator clause: tick/rank for events, window for rollups/alerts."""
        if "name" in rec:
            return f"tick {rec.get('tick')}, rank {rec.get('rank')}"
        return f"window {rec.get('window')}, t1={rec.get('t1_us', rec.get('t_us'))}us"

    def describe(self) -> str:
        if self.a is None:
            rec = self.b or {}
            return (
                f"log A ends at record {self.index}; B continues with "
                f"{self._label(rec)} ({self._where(rec)})"
            )
        if self.b is None:
            rec = self.a
            return (
                f"log B ends at record {self.index}; A continues with "
                f"{self._label(rec)} ({self._where(rec)})"
            )
        fields = sorted(
            k
            for k in {**self.a, **self.b}
            if self.a.get(k) != self.b.get(k)
        )
        return (
            f"first divergent record at index {self.index}: "
            f"A={self._label(self.a)} vs B={self._label(self.b)} "
            f"({self._where(self.a)}, "
            f"differing fields: {', '.join(fields)})"
        )


def first_divergence(
    a: list[dict[str, Any]],
    b: list[dict[str, Any]],
    name: str | None = None,
    kind: str | None = None,
) -> Divergence | None:
    """First record where the streams differ, or None when identical.

    With ``name`` set, both streams are first filtered to events of that
    name — e.g. ``name="tick"`` compares the partition-invariant per-tick
    summaries across runs with different rank counts.  With ``kind`` set,
    streams are filtered by the record ``kind`` tag instead — e.g.
    ``kind="rollup"`` or ``kind="alert"`` localises the first diverging
    telemetry record of a :mod:`repro.obs.live` stream (raw trace events
    carry no ``kind`` key and are filtered out).
    """
    if name is not None:
        a = [r for r in a if r.get("name") == name]
        b = [r for r in b if r.get("name") == name]
    if kind is not None:
        a = [r for r in a if r.get("kind") == kind]
        b = [r for r in b if r.get("kind") == kind]
    for i in range(min(len(a), len(b))):
        if a[i] != b[i]:
            return Divergence(i, a[i], b[i])
    if len(a) != len(b):
        i = min(len(a), len(b))
        return Divergence(i, a[i] if i < len(a) else None, b[i] if i < len(b) else None)
    return None
