"""Named metric instruments with per-rank and reduced cluster-wide views.

The registry replaces the scattered counter plumbing that used to live on
``_RankState`` (``cum_fired`` etc.) with three instrument kinds:

* :class:`Counter` — monotone per-rank accumulators (spikes, messages,
  bytes, checkpoints);
* :class:`Gauge` — last-written per-rank values (mailbox queue depth);
* :class:`Histogram` — fixed-bucket distributions (messages/tick,
  bytes/send, spikes/core) whose bucket edges are declared up front so
  two runs always bin identically.

Values are keyed by rank (``-1`` is the cluster-wide key used by
whole-tick observations).  Every reduction iterates ranks in sorted
order, so floating-point sums are deterministic.  Registries support
:meth:`MetricRegistry.snapshot`/:meth:`MetricRegistry.restore`, which the
resilience checkpoints use to roll instrument state back together with
simulator state — after a recovery, registry counters match a fault-free
run bit for bit.

Instrument accessors are idempotent: asking for an existing name returns
the existing instrument (kind-checked), which is what keeps metrics
continuous across a spare-rank simulator rebuild.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator


class _Instrument:
    kind = ""

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        self.name = name
        self.help = help
        self.unit = unit

    def ranks(self) -> list[int]:
        raise NotImplementedError

    def snapshot(self) -> dict[str, Any]:
        raise NotImplementedError

    def restore(self, snap: dict[str, Any]) -> None:
        raise NotImplementedError


class Counter(_Instrument):
    """Monotone accumulator with one cell per rank."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        super().__init__(name, help, unit)
        self._values: dict[int, float] = {}

    def inc(self, rank: int = -1, value: float = 1) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name}: negative increment {value}")
        self._values[rank] = self._values.get(rank, 0) + value

    def value(self, rank: int = -1) -> float:
        return self._values.get(rank, 0)

    def total(self) -> float:
        return sum(self._values[r] for r in sorted(self._values))

    def ranks(self) -> list[int]:
        return sorted(self._values)

    def snapshot(self) -> dict[str, Any]:
        return {"values": dict(self._values)}

    def restore(self, snap: dict[str, Any]) -> None:
        self._values = dict(snap["values"])


class Gauge(_Instrument):
    """Last-written value per rank (queue depths, window sizes)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        super().__init__(name, help, unit)
        self._values: dict[int, float] = {}

    def set(self, rank: int, value: float) -> None:
        self._values[rank] = value

    def value(self, rank: int = -1) -> float:
        return self._values.get(rank, 0)

    def total(self) -> float:
        return sum(self._values[r] for r in sorted(self._values))

    def max(self) -> float:
        if not self._values:
            return 0.0
        return max(self._values[r] for r in sorted(self._values))

    def ranks(self) -> list[int]:
        return sorted(self._values)

    def snapshot(self) -> dict[str, Any]:
        return {"values": dict(self._values)}

    def restore(self, snap: dict[str, Any]) -> None:
        self._values = dict(snap["values"])


class Histogram(_Instrument):
    """Fixed-bucket distribution with per-rank counts.

    ``buckets`` are upper bounds (``le`` edges); observations above the
    last edge land in the implicit overflow bucket.  Bucket edges are
    frozen at creation so different runs — and different ranks — always
    bin identically, which keeps reduced views associative.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: tuple[float, ...],
        help: str = "",
        unit: str = "",
    ) -> None:
        super().__init__(name, help, unit)
        if not buckets:
            raise ValueError(f"histogram {self.name}: needs at least one bucket edge")
        self.buckets: tuple[float, ...] = tuple(sorted(buckets))
        self._counts: dict[int, list[int]] = {}
        self._sums: dict[int, float] = {}

    def observe(self, rank: int, value: float) -> None:
        counts = self._counts.get(rank)
        if counts is None:
            counts = self._counts[rank] = [0] * (len(self.buckets) + 1)
            self._sums[rank] = 0.0
        counts[bisect_left(self.buckets, value)] += 1
        self._sums[rank] += value

    def counts(self, rank: int | None = None) -> list[int]:
        """Raw per-bucket counts for ``rank``, or reduced over all ranks."""
        if rank is not None:
            return list(self._counts.get(rank, [0] * (len(self.buckets) + 1)))
        reduced = [0] * (len(self.buckets) + 1)
        for r in sorted(self._counts):
            for i, c in enumerate(self._counts[r]):
                reduced[i] += c
        return reduced

    def cumulative(self, rank: int | None = None) -> list[tuple[float, int]]:
        """Prometheus-style cumulative (le, count) pairs, +Inf last."""
        counts = self.counts(rank)
        out: list[tuple[float, int]] = []
        running = 0
        for edge, c in zip(self.buckets, counts):
            running += c
            out.append((edge, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def count(self, rank: int | None = None) -> int:
        return sum(self.counts(rank))

    def sum(self, rank: int | None = None) -> float:
        if rank is not None:
            return self._sums.get(rank, 0.0)
        return sum(self._sums[r] for r in sorted(self._sums))

    def ranks(self) -> list[int]:
        return sorted(self._counts)

    def snapshot(self) -> dict[str, Any]:
        return {
            "counts": {r: list(c) for r, c in self._counts.items()},
            "sums": dict(self._sums),
        }

    def restore(self, snap: dict[str, Any]) -> None:
        self._counts = {r: list(c) for r, c in snap["counts"].items()}
        self._sums = dict(snap["sums"])


class MetricRegistry:
    """Name-indexed instrument store shared by one virtual cluster."""

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls: type, name: str, *args: Any, **kwargs: Any) -> Any:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"instrument {name!r} already registered as {existing.kind}"
                )
            return existing
        inst = cls(name, *args, **kwargs)
        self._instruments[name] = inst
        return inst

    def counter(self, name: str, help: str = "", unit: str = "") -> Counter:
        return self._get_or_create(Counter, name, help, unit)

    def gauge(self, name: str, help: str = "", unit: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help, unit)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...],
        help: str = "",
        unit: str = "",
    ) -> Histogram:
        return self._get_or_create(Histogram, name, buckets, help=help, unit=unit)

    def get(self, name: str) -> _Instrument:
        try:
            return self._instruments[name]
        except KeyError:
            raise KeyError(f"no instrument named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def collect(self) -> Iterator[_Instrument]:
        """All instruments in sorted-name order (the export order)."""
        for name in sorted(self._instruments):
            yield self._instruments[name]

    # -- checkpoint support ---------------------------------------------------

    def snapshot(self, prefix: str | None = None) -> dict[str, dict[str, Any]]:
        """Deep-copy instrument state, optionally only names under ``prefix``.

        Resilience checkpoints snapshot with ``prefix="compass_"`` so that
        simulator counters roll back on recovery while the resilience
        meta-counters (checkpoints taken, recoveries performed) stay
        monotone across the rollback.
        """
        return {
            name: inst.snapshot()
            for name, inst in self._instruments.items()
            if prefix is None or name.startswith(prefix)
        }

    def restore(self, snap: dict[str, dict[str, Any]]) -> None:
        """Restore previously snapshotted instruments; others are untouched."""
        for name in sorted(snap):
            inst = self._instruments.get(name)
            if inst is not None:
                inst.restore(snap[name])
