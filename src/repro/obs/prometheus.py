"""Prometheus textfile exporter for the metric registry.

Renders the node-exporter *textfile collector* exposition format: the
output of :func:`write_textfile` can be dropped into a textfile-collector
directory (or served as-is) without any client library.

Layout per instrument:

* counters/gauges — one ``{rank="N"}``-labelled sample per rank plus an
  unlabelled cluster-wide reduction (sum);
* histograms — cluster-wide cumulative ``_bucket{le=...}`` series with
  ``_sum``/``_count``, plus per-rank ``_count``/``_sum`` samples.

Rank iteration is sorted and floats are rendered with :func:`repr`-free
formatting, so the rendered text is byte-stable for a given registry
state — the same property the JSONL log has.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.registry import Counter, Gauge, Histogram, MetricRegistry


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return format(value, ".10g")


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def render_textfile(registry: MetricRegistry) -> str:
    """Render every instrument in the registry as exposition text."""
    lines: list[str] = []
    for inst in registry.collect():
        name = _sanitize(inst.name)
        if inst.help:
            lines.append(f"# HELP {name} {inst.help}")
        lines.append(f"# TYPE {name} {inst.kind}")
        if isinstance(inst, (Counter, Gauge)):
            for rank in inst.ranks():
                if rank < 0:
                    continue
                lines.append(f'{name}{{rank="{rank}"}} {_fmt(inst.value(rank))}')
            lines.append(f"{name} {_fmt(inst.total())}")
        elif isinstance(inst, Histogram):
            for le, cum in inst.cumulative():
                lines.append(f'{name}_bucket{{le="{_fmt(le)}"}} {cum}')
            lines.append(f"{name}_sum {_fmt(inst.sum())}")
            lines.append(f"{name}_count {inst.count()}")
            for rank in inst.ranks():
                if rank < 0:
                    continue
                lines.append(f'{name}_count{{rank="{rank}"}} {inst.count(rank)}')
                lines.append(f'{name}_sum{{rank="{rank}"}} {_fmt(inst.sum(rank))}')
    return "\n".join(lines) + "\n"


def write_textfile(registry: MetricRegistry, path: str | Path) -> Path:  # repro: obs-flush
    """Write the exposition text to ``path``; the obs flush boundary."""
    path = Path(path)
    path.write_text(render_textfile(registry))
    return path
