"""The simulation service: a deterministic worker pool on a virtual clock.

:class:`SimServer` is a discrete-event loop over one simulated timeline
(microseconds).  Jobs arrive, pass admission control
(:class:`~repro.serve.queue.FairShareQueue`), wait for a compatible
batch (:class:`~repro.serve.batcher.Batcher`), and run on one of a pool
of virtual-cluster workers.  Every latency the service reports is the
sum of simulated costs — queue wait, batch-formation delay, setup, and
execution — so a seeded run produces byte-identical reports on any
machine, at any host load, across repeated runs.

Execution cost is charged from *partition-invariant* quantities only:
the tick count and the per-tick fired-spike counts of the underlying
Compass run (identical across 1-rank and 4-rank layouts by the §IV
partition-invariance property).  The worker-pool width in
:class:`ServeConfig` therefore changes throughput and queueing, but a
given job's run cost never depends on the process layout — which is
what makes latency reports reproducible across layouts.

Faulted jobs: when a :class:`~repro.resilience.faults.FaultSchedule` is
armed, the first launched batch runs under
:class:`~repro.resilience.recovery.ResilientRunner` (MPI backend only);
the simulated recovery overhead is charged to every job in that batch
and surfaces as ``retries`` in the report.
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

from repro.errors import AdmissionError, ConfigurationError
from repro.exec import ExecLayout, SetupCostModel, make_adapter
from repro.obs import Observability
from repro.obs.live.context import TraceContext
from repro.serve.batcher import Batch, Batcher, BatchPolicy
from repro.serve.jobs import (
    DONE,
    QUEUED,
    REJECTED,
    RUNNING,
    BatchRecord,
    Job,
    JobSpec,
)
from repro.serve.queue import FairShareQueue, TenantQuota
from repro.util.validation import check_positive, check_range, require

#: Service backends, mirroring the execution backends (``repro.exec``).
#: ``pool`` runs each batch on actual host cores (shared-memory spike
#: windows); its results are byte-identical to ``pgas`` by the adapter
#: determinism contract, so serve reports stay reproducible.
BACKENDS = ("mpi", "pgas", "pool")

# Event kinds, in tie-break order at equal timestamps: arrivals first,
# then batch-delay flushes, then job completions, then worker releases.
_ARRIVAL = 0
_FLUSH = 1
_JOB_DONE = 2
_WORKER_FREE = 3


@lru_cache(maxsize=8)
def build_network(model: str, cores: int, seed: int):
    """Build (and memoise) the network for a batch key.

    Networks are read-only to the simulators, so compatible batches —
    and repeated benches in one process — share one build.  The cache is
    keyed by the full batch key, which is exactly the compatibility
    predicate.
    """
    if model == "quickstart":
        from repro.apps.quicknet import build_quickstart_network

        return build_quickstart_network(n_cores=cores, seed=seed)
    if model == "macaque":
        from repro.cocomac.model import build_macaque_model

        return build_macaque_model(total_cores=cores, seed=seed).compiled.network
    raise ConfigurationError(f"unknown model kind {model!r}")


@dataclass(frozen=True)
class ServeCostModel(SetupCostModel):
    """Simulated cost coefficients for serving one batch.

    A validated view of :class:`repro.exec.SetupCostModel` — the single
    source of setup/span-cost arithmetic shared with the shard router.
    ``setup_us`` is the per-*batch* virtual-cluster setup (network build,
    compile, partition, buffer registration) — the cost batching exists
    to amortise.  ``tick_us`` and ``spike_us`` charge execution from the
    two partition-invariant run quantities.
    """

    def __post_init__(self) -> None:
        check_positive("setup_us", self.setup_us)
        check_positive("tick_us", self.tick_us)
        check_range("spike_us", self.spike_us, lo=0.0)

    def run_us(self, ticks: int, cum_fired: int) -> float:
        """Execution cost of the first ``ticks`` ticks of a batch."""
        return self.span_cost_us(ticks, cum_fired, cold=False)


@dataclass(frozen=True)
class ServeConfig:
    """Validated service configuration."""

    workers: int = 2
    processes: int = 1
    threads: int = 1
    backend: str = "mpi"
    #: Host worker processes per launched batch (``pool`` backend only).
    pool_workers: int = 2
    max_batch_size: int = 8
    max_batch_delay_us: float = 0.0
    queue_capacity: int = 256
    quotas: tuple[tuple[str, TenantQuota], ...] = ()
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    costs: ServeCostModel = field(default_factory=ServeCostModel)
    #: When set, the first launched batch runs under ResilientRunner.
    fault_schedule: object | None = None
    checkpoint_interval: int = 10
    recovery_policy: str = "restart"
    #: Retain per-job/per-batch records for post-hoc reports.  Fleet-scale
    #: runs (:mod:`repro.shard`) disable this and account for completions
    #: in hooks instead, keeping memory O(latencies), not O(job objects).
    keep_records: bool = True

    def __post_init__(self) -> None:
        check_positive("workers", self.workers)
        check_positive("processes", self.processes)
        check_positive("threads", self.threads)
        require(
            self.backend in BACKENDS,
            f"backend={self.backend!r} not one of {BACKENDS}",
        )
        check_positive("pool_workers", self.pool_workers)
        check_positive("queue_capacity", self.queue_capacity)
        check_positive("max_batch_size", self.max_batch_size)
        check_range("max_batch_delay_us", self.max_batch_delay_us, lo=0.0)
        check_positive("checkpoint_interval", self.checkpoint_interval)
        require(
            self.fault_schedule is None or self.backend == "mpi",
            "fault injection requires the mpi backend "
            "(recovery hooks live in the two-sided virtual cluster)",
        )


class SimServer:
    """Deterministic multi-tenant simulation service on a simulated clock."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        obs: Observability | None = None,
        rank: int = -1,
    ) -> None:
        self.config = config or ServeConfig()
        self.obs = obs or Observability.off()
        #: Trace-track identity: -1 = the cluster track (standalone
        #: service); the shard router assigns each shard's server its
        #: shard index so fleet traces get one row per shard.
        self.trace_rank = rank
        self.queue = FairShareQueue(
            capacity=self.config.queue_capacity,
            quotas=dict(self.config.quotas),
            default_quota=self.config.default_quota,
        )
        self.batcher = Batcher(
            BatchPolicy(
                max_batch_size=self.config.max_batch_size,
                max_batch_delay_us=self.config.max_batch_delay_us,
            )
        )
        self.jobs: dict[int, Job] = {}
        self.batches: list[BatchRecord] = []
        self._events: list[tuple[float, int, int, object]] = []
        self._event_seq = 0
        self._job_seq = 0
        self._batch_seq = 0
        # Free workers as a sorted id list: launches always take the
        # lowest-numbered free worker (explicit deterministic order).
        self._free_workers: list[int] = list(range(self.config.workers))
        #: Live pool width; moves with add_worker/remove_worker.
        self.workers = self.config.workers
        self._next_worker_id = self.config.workers
        self._hooks: list[Callable[[Job], None]] = []
        self._fault_pending = self.config.fault_schedule is not None
        # (batch_key, ticks) -> cumulative fired counts; run results are
        # deterministic so identical batches share one simulation.
        self._run_cache: dict[tuple[tuple[str, int, int], int], tuple[int, ...]] = {}
        self._tenant_ids: dict[str, int] = {}
        self.now_us = 0.0
        # Aggregate counters kept regardless of keep_records, so fleet
        # reports don't need the per-batch record list.
        self.n_batches = 0
        self.batch_jobs_total = 0
        self.retries_total = 0
        #: Largest simulator state footprint observed across launched
        #: batches (bytes), from :func:`repro.core.checkpoint.state_nbytes`.
        self.peak_state_nbytes = 0
        reg = self.obs.registry
        self._g_depth = reg.gauge("serve_queue_depth", help="jobs waiting in queue")
        self._h_batch = reg.histogram(
            "serve_batch_size",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
            help="jobs per launched batch",
        )
        self._h_latency = reg.histogram(
            "serve_job_latency_us",
            buckets=(1e3, 1e4, 1e5, 1e6, 1e7, 1e8),
            help="submit-to-complete latency (simulated)",
            unit="us",
        )
        self._m_submitted = reg.counter(
            "serve_jobs_submitted_total", help="jobs submitted, keyed by tenant id"
        )
        self._m_completed = reg.counter(
            "serve_jobs_completed_total", help="jobs completed, keyed by tenant id"
        )
        self._m_rejected = reg.counter(
            "serve_jobs_rejected_total", help="admission rejections, keyed by tenant id"
        )
        self._m_miss = reg.counter(
            "serve_deadline_miss_total", help="SLO deadline misses, keyed by tenant id"
        )
        self._m_batches = reg.counter("serve_batches_total", help="batches launched")
        self._m_retries = reg.counter(
            "serve_retries_total", help="fault-recovery retries across batches"
        )

    # -- tenant bookkeeping ---------------------------------------------------

    def tenant_id(self, tenant: str) -> int:
        """Stable small-int key for per-tenant instrument cells.

        Ids are assigned in first-submission order, which is part of the
        deterministic schedule, so instrument cells line up across runs.
        """
        return self._tenant_ids.setdefault(tenant, len(self._tenant_ids))

    @property
    def tenants(self) -> list[str]:
        """Tenant names in id order."""
        return sorted(self._tenant_ids, key=self._tenant_ids.get)

    # -- submission -----------------------------------------------------------

    def add_completion_hook(self, hook: Callable[[Job], None]) -> None:
        """``hook(job)`` fires when a job completes *or* is rejected."""
        self._hooks.append(hook)

    def submit(self, spec: JobSpec, at_us: float = 0.0) -> int:
        """Schedule a job arrival at ``at_us`` on the simulated timeline."""
        check_range("at_us", at_us, lo=0.0)
        job = Job(spec=spec, job_id=self._job_seq, submit_us=at_us)
        self._job_seq += 1
        self.jobs[job.job_id] = job
        self._push(at_us, _ARRIVAL, job)
        return job.job_id

    # -- event loop -----------------------------------------------------------

    def _push(self, t_us: float, kind: int, payload: object) -> None:
        heapq.heappush(self._events, (t_us, kind, self._event_seq, payload))
        self._event_seq += 1

    def run(self) -> None:
        """Drain the event heap: process every arrival to completion."""
        while self._events:
            t_us, kind, seq, payload = heapq.heappop(self._events)
            del seq
            self.now_us = max(self.now_us, t_us)
            self._dispatch(kind, payload)

    def run_until(self, t_us: float) -> None:
        """Process every event at or before ``t_us``, then stop.

        The sharded fleet (:mod:`repro.shard`) drives each shard's server
        as a sub-simulation on a shared clock, interleaving routing and
        autoscaling decisions between event batches; :meth:`run` is the
        drain-everything special case.  Advances ``now_us`` to at least
        ``t_us`` even when no events fall in the window.
        """
        while self._events and self._events[0][0] <= t_us:
            t, kind, seq, payload = heapq.heappop(self._events)
            del seq
            self.now_us = max(self.now_us, t)
            self._dispatch(kind, payload)
        self.now_us = max(self.now_us, t_us)

    def run_before(self, t_us: float) -> None:
        """Process every event *strictly* before ``t_us``, then stop.

        The telemetry pipeline's windows are half-open ``[t0, t1)``: a
        completion at exactly a boundary belongs to the next window, so
        the router drains sub-boundary events with this, closes the
        window, and only then runs the boundary instant itself via
        :meth:`run_until`.  Does not advance ``now_us`` past the last
        processed event — boundary-instant events still see their own
        timestamp.
        """
        while self._events and self._events[0][0] < t_us:
            t, kind, seq, payload = heapq.heappop(self._events)
            del seq
            self.now_us = max(self.now_us, t)
            self._dispatch(kind, payload)

    @property
    def idle(self) -> bool:
        """True when the event heap is drained (no pending work)."""
        return not self._events

    def _dispatch(self, kind: int, payload: object) -> None:
        if kind == _ARRIVAL:
            self._on_arrival(payload)
        elif kind == _FLUSH:
            self._maybe_launch()
        elif kind == _JOB_DONE:
            self._on_job_done(payload)
        else:
            # Only idle workers are ever retired, so a _WORKER_FREE event
            # always belongs to a live pool member: reinsert unconditionally.
            insort(self._free_workers, payload)
            self._maybe_launch()

    # -- worker-pool elasticity -----------------------------------------------

    def add_worker(self) -> int:
        """Grow the pool by one worker and return its id.

        Ids are never recycled: a new worker always gets the next id, so
        a retired worker's pending ``_WORKER_FREE`` event can never alias
        a live one and launch order stays deterministic.
        """
        wid = self._next_worker_id
        self._next_worker_id += 1
        insort(self._free_workers, wid)
        self.workers += 1
        self._maybe_launch()
        return wid

    def remove_worker(self) -> bool:
        """Retire one *idle* worker (the highest-numbered free one).

        Returns False when the pool is at one worker or every worker is
        busy — callers (the autoscaler) retry at their next evaluation
        boundary rather than interrupting a running batch.
        """
        if self.workers <= 1 or not self._free_workers:
            return False
        self._free_workers.pop()
        self.workers -= 1
        return True

    def _on_arrival(self, job: Job) -> None:
        tid = self.tenant_id(job.spec.tenant)
        self._m_submitted.inc(rank=tid)
        tracer = self.obs.tracer
        try:
            self.queue.submit(job)
        except AdmissionError as exc:
            job.status = REJECTED
            job.reject_reason = type(exc).__name__
            self._m_rejected.inc(rank=tid)
            if tracer.enabled:
                tracer.instant(
                    "serve.reject",
                    rank=self.trace_rank,
                    tick=-1,
                    ts_us=self.now_us,
                    cat="serve",
                    job=job.job_id,
                    tenant=job.spec.tenant,
                    reason=job.reject_reason,
                )
                self._trace_stage(
                    tracer, job, "reject", terminal=True, reason=job.reject_reason
                )
            self._fire_hooks(job)
            if not self.config.keep_records:
                del self.jobs[job.job_id]
            return
        self._g_depth.set(-1, float(len(self.queue)))
        if tracer.enabled:
            tracer.instant(
                "serve.submit",
                rank=self.trace_rank,
                tick=-1,
                ts_us=self.now_us,
                cat="serve",
                job=job.job_id,
                tenant=job.spec.tenant,
                priority=job.spec.priority,
            )
            self._trace_stage(tracer, job, "queue", depth=len(self.queue))
        self._maybe_launch()

    def _on_job_done(self, job: Job) -> None:
        job.status = DONE
        job.finish_us = self.now_us
        tid = self.tenant_id(job.spec.tenant)
        self._m_completed.inc(rank=tid)
        self._h_latency.observe(-1, job.latency_us)
        self._h_latency.observe(tid, job.latency_us)
        if job.deadline_missed:
            self._m_miss.inc(rank=tid)
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.instant(
                "serve.done",
                rank=self.trace_rank,
                tick=-1,
                ts_us=self.now_us,
                cat="serve",
                job=job.job_id,
                tenant=job.spec.tenant,
                latency_us=job.latency_us,
            )
            self._trace_stage(
                tracer, job, "done", terminal=True, latency_us=job.latency_us
            )
        self._fire_hooks(job)
        if not self.config.keep_records:
            del self.jobs[job.job_id]

    def _fire_hooks(self, job: Job) -> None:
        for hook in self._hooks:
            hook(job)

    def _trace_stage(
        self, tracer, job: Job, stage: str, terminal: bool = False, **attrs
    ) -> None:
        """Emit one causal stage of ``job``'s trace.

        Each stage is an ``X`` slice named ``job.<stage>`` carrying the
        trace/span/parent triplet, plus a flow event at the same instant
        binding the arrow to that slice: ``s`` on the job's first traced
        stage, ``f`` on its terminal one, ``t`` in between.  The job's
        context advances to the stage's child, so successive stages chain
        parent → span (see :mod:`repro.obs.live.journey`).  Callers guard
        on ``tracer.enabled``; nothing here runs when tracing is off.
        """
        ctx = job.trace
        first = ctx is None
        if first:
            # Standalone service (no router): the journey starts here.
            ctx = TraceContext.root(job.spec.tenant, job.job_id, job.submit_us)
        ctx = ctx.child(stage)
        job.trace = ctx
        tracer.complete(
            f"job.{stage}",
            rank=self.trace_rank,
            ts_us=self.now_us,
            cat="serve",
            tick=-1,
            job=job.job_id,
            tenant=job.spec.tenant,
            trace=ctx.trace_id,
            span=ctx.span_id,
            parent=ctx.parent_id,
            **attrs,
        )
        if first:
            tracer.flow(
                "job", rank=self.trace_rank, ph="s", flow_id=ctx.trace_id,
                ts_us=self.now_us, cat="serve", tick=-1, job=job.job_id,
            )
        if terminal:
            tracer.flow(
                "job", rank=self.trace_rank, ph="f", flow_id=ctx.trace_id,
                ts_us=self.now_us, cat="serve", tick=-1, job=job.job_id,
            )
        elif not first:
            tracer.flow(
                "job", rank=self.trace_rank, ph="t", flow_id=ctx.trace_id,
                ts_us=self.now_us, cat="serve", tick=-1, job=job.job_id,
            )

    # -- launching ------------------------------------------------------------

    def _maybe_launch(self) -> None:
        while self._free_workers:
            ready = self.batcher.ready_at(self.queue, self.now_us)
            if ready is None:
                return
            if ready > self.now_us:
                self._push(ready, _FLUSH, None)
                return
            batch = self.batcher.form(self.queue, self.now_us)
            if batch is None:
                return
            worker = self._free_workers.pop(0)
            self._g_depth.set(-1, float(len(self.queue)))
            self._execute(batch, worker)

    def _execute(self, batch: Batch, worker: int) -> None:
        costs = self.config.costs
        max_ticks = batch.max_ticks
        fired, retries, overhead_us = self._run_batch(batch.key, max_ticks)
        cum = [0]
        for f in fired:
            cum.append(cum[-1] + f)
        record = BatchRecord(
            batch_id=self._batch_seq,
            key=batch.key,
            job_ids=[job.job_id for job in batch.jobs],
            launch_us=self.now_us,
            max_ticks=max_ticks,
            worker=worker,
            retries=retries,
            overhead_us=overhead_us,
        )
        self._batch_seq += 1
        busy_until = (
            self.now_us
            + costs.span_cost_us(max_ticks, cum[-1], cold=True)
            + overhead_us
        )
        record.end_us = busy_until
        self.n_batches += 1
        self.batch_jobs_total += record.size
        self.retries_total += retries
        if self.config.keep_records:
            self.batches.append(record)
        for job in batch.jobs:
            job.status = RUNNING
            job.launch_us = self.now_us
            job.batch_id = record.batch_id
            job.batch_size = record.size
            job.retries = retries
            job.overhead_us = overhead_us
            finish = (
                self.now_us
                + costs.span_cost_us(job.spec.ticks, cum[job.spec.ticks], cold=True)
                + overhead_us
            )
            self._push(finish, _JOB_DONE, job)
        self._push(busy_until, _WORKER_FREE, worker)
        self._h_batch.observe(-1, float(record.size))
        self._m_batches.inc()
        if retries:
            self._m_retries.inc(value=retries)
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.instant(
                "serve.launch",
                rank=self.trace_rank,
                tick=-1,
                ts_us=self.now_us,
                cat="serve",
                batch=record.batch_id,
                size=record.size,
                worker=worker,
                model=batch.key[0],
            )
            for job in batch.jobs:
                self._trace_stage(
                    tracer, job, "batch", batch=record.batch_id, size=record.size
                )
                self._trace_stage(
                    tracer, job, "run", worker=worker, ticks=job.spec.ticks
                )
                if retries:
                    self._trace_stage(
                        tracer, job, "recover",
                        retries=retries, overhead_us=overhead_us,
                    )

    def _run_batch(
        self, key: tuple[str, int, int], ticks: int
    ) -> tuple[tuple[int, ...], int, float]:
        """Run (or reuse) the simulation behind a batch.

        Returns per-tick fired counts plus fault-recovery accounting.
        Fired counts are partition-invariant and deterministic, so
        fault-free runs are memoised per (key, ticks).
        """
        cached = self._run_cache.get((key, ticks))
        if cached is not None and not self._fault_pending:
            return cached, 0, 0.0
        model, cores, seed = key
        network = build_network(model, cores, seed)
        layout = ExecLayout(
            n_processes=self.config.processes,
            threads_per_process=self.config.threads,
            workers=self.config.pool_workers,
        )
        if self._fault_pending:
            # One-shot: the armed schedule applies to the first launch.
            self._fault_pending = False
            from repro.resilience.recovery import RecoveryPolicy, ResilientRunner

            runner = ResilientRunner(
                lambda: make_adapter(
                    "mpi", obs=Observability.off()
                ).prepare(network, layout),
                schedule=self.config.fault_schedule,
                checkpoint_interval=self.config.checkpoint_interval,
                policy=RecoveryPolicy(kind=self.config.recovery_policy),
            )
            result = runner.run(ticks)
            fired = tuple(tm.fired for tm in result.metrics.per_tick)
            self._run_cache[(key, ticks)] = fired
            self._note_state_nbytes(runner.sim)
            overhead_us = result.metrics.overhead_s * 1e6
            return fired, len(runner.report.failures), overhead_us
        with make_adapter(self.config.backend, obs=Observability.off()) as adapter:
            adapter.prepare(network, layout)
            result = adapter.run(ticks)
            self._note_state_nbytes(adapter)
        fired = tuple(tm.fired for tm in result.metrics.per_tick)
        self._run_cache[(key, ticks)] = fired
        return fired, 0, 0.0

    def _note_state_nbytes(self, adapter) -> None:
        """Track the largest simulator state footprint (bytes).

        :meth:`~repro.exec.SimulatorAdapter.state_nbytes` sums per-block
        snapshot arrays, which partition the same neurons regardless of
        rank layout, so the peak is layout-invariant and safe to publish
        in byte-identical reports.
        """
        self.peak_state_nbytes = max(self.peak_state_nbytes, adapter.state_nbytes())

    # -- results --------------------------------------------------------------

    def finished_jobs(self) -> list[Job]:
        """All terminal jobs (done or rejected) in job-id order."""
        return [
            self.jobs[jid]
            for jid in sorted(self.jobs)
            if self.jobs[jid].status in (DONE, REJECTED)
        ]

    def pending_jobs(self) -> list[Job]:
        """Jobs still queued or running (non-empty only mid-run)."""
        return [
            self.jobs[jid]
            for jid in sorted(self.jobs)
            if self.jobs[jid].status in (QUEUED, RUNNING)
        ]
