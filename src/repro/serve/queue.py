"""Admission control and weighted fair-share scheduling for the service.

Admission is a two-gate check at submission time: a bounded global queue
(:class:`repro.errors.QueueFullError` on overflow) and a per-tenant
in-queue quota (:class:`repro.errors.TenantQuotaError`).  Rejections are
typed so load generators and the CLI can account for them separately.

Scheduling is start-time fair queuing (SFQ) layered under strict
priority.  Each tenant carries a virtual finish time; a job's virtual
start is ``max(global_vtime, tenant_vfinish)`` and its virtual finish
adds ``demand / weight``.  The ready order is::

    (priority, virtual_finish, seq)

with ``seq`` a monotonically increasing submission counter — the
explicit tie-break that makes the schedule fully deterministic: equal
priority and equal virtual finish always resolve by submission order,
never by hash order or heap internals (rule DET108).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import QueueFullError, TenantQuotaError
from repro.serve.jobs import Job
from repro.util.validation import check_positive

#: Heap entry layout: (priority, virtual_finish, seq, job).
_ENTRY_JOB = 3


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits and fair-share weight.

    ``weight`` scales the tenant's share of service capacity (2.0 drains
    twice as fast as 1.0 under contention); ``max_queued`` bounds how
    many of the tenant's jobs may wait in the queue at once.
    """

    weight: float = 1.0
    max_queued: int = 64

    def __post_init__(self) -> None:
        check_positive("weight", self.weight)
        check_positive("max_queued", self.max_queued)


class FairShareQueue:
    """Bounded, quota-enforcing, deterministic fair-share job queue."""

    def __init__(
        self,
        capacity: int = 256,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
    ) -> None:
        check_positive("capacity", capacity)
        self.capacity = capacity
        self._quotas = dict(quotas) if quotas else {}
        self._default_quota = default_quota or TenantQuota()
        # Entries are (priority, vfinish, seq, job) tuples; seq is the
        # monotonic tie-break that pins the pop order (DET108).
        self._heap: list[tuple[int, float, int, Job]] = []
        self._seq = 0
        self._vtime = 0.0
        self._tenant_vfinish: dict[str, float] = {}
        self._queued_by_tenant: dict[str, int] = {}

    def quota_for(self, tenant: str) -> TenantQuota:
        """The quota governing ``tenant`` (explicit or default)."""
        return self._quotas.get(tenant, self._default_quota)

    def __len__(self) -> int:
        return len(self._heap)

    def queued_for(self, tenant: str) -> int:
        """How many of ``tenant``'s jobs are currently queued."""
        return self._queued_by_tenant.get(tenant, 0)

    def submit(self, job: Job) -> None:
        """Admit ``job`` or raise a typed :class:`AdmissionError`.

        On rejection the queue state is untouched — virtual time does
        not advance for jobs that were never admitted.
        """
        tenant = job.spec.tenant
        if len(self._heap) >= self.capacity:
            raise QueueFullError(
                f"queue full: capacity={self.capacity}, cannot admit "
                f"job {job.job_id} (tenant {tenant!r})"
            )
        quota = self.quota_for(tenant)
        queued = self._queued_by_tenant.get(tenant, 0)
        if queued >= quota.max_queued:
            raise TenantQuotaError(
                f"tenant {tenant!r} quota exceeded: "
                f"{queued}/{quota.max_queued} jobs already queued"
            )
        vstart = max(self._vtime, self._tenant_vfinish.get(tenant, 0.0))
        vfinish = vstart + job.spec.demand() / quota.weight
        self._tenant_vfinish[tenant] = vfinish
        self._queued_by_tenant[tenant] = queued + 1
        heapq.heappush(
            self._heap, (job.spec.priority, vfinish, self._seq, job)
        )
        self._seq += 1

    def peek(self) -> Job | None:
        """The job that :meth:`pop` would return, or ``None`` if empty."""
        if not self._heap:
            return None
        return self._heap[0][_ENTRY_JOB]

    def pop(self) -> Job:
        """Remove and return the highest-ranked job, advancing vtime."""
        priority, vfinish, seq, job = heapq.heappop(self._heap)
        del priority, seq
        self._vtime = max(self._vtime, vfinish)
        tenant = job.spec.tenant
        self._queued_by_tenant[tenant] -= 1
        if self._queued_by_tenant[tenant] == 0:
            del self._queued_by_tenant[tenant]
        return job

    def count_compatible(self, key: tuple[str, int, int]) -> int:
        """How many queued jobs share batch key ``key``."""
        return sum(
            1 for entry in self._heap if entry[_ENTRY_JOB].spec.batch_key == key
        )

    def pop_compatible(self, key: tuple[str, int, int], limit: int) -> list[Job]:
        """Pop up to ``limit`` jobs with batch key ``key``, in fair order.

        Jobs with other keys are skipped and re-inserted with their
        original (priority, vfinish, seq) entries, so their relative
        order — and the determinism guarantee — is unchanged.
        """
        check_positive("limit", limit)
        taken: list[Job] = []
        skipped: list[tuple[int, float, int, Job]] = []
        while self._heap and len(taken) < limit:
            entry = heapq.heappop(self._heap)
            job = entry[_ENTRY_JOB]
            if job.spec.batch_key == key:
                self._vtime = max(self._vtime, entry[1])
                tenant = job.spec.tenant
                self._queued_by_tenant[tenant] -= 1
                if self._queued_by_tenant[tenant] == 0:
                    del self._queued_by_tenant[tenant]
                taken.append(job)
            else:
                skipped.append(entry)
        for entry in skipped:
            # repro: allow[DET108] entries keep their (priority, vfinish, seq, job) tuples
            heapq.heappush(self._heap, entry)
        return taken

    def drain_order(self) -> list[Job]:
        """Non-destructive preview of the full pop order (for tests)."""
        return [entry[_ENTRY_JOB] for entry in sorted(self._heap)]
