"""Seeded load generators and the SLO latency report.

Both generators drive arrivals on the *simulated* clock, so a given
seed reproduces the exact same offered load — and therefore the exact
same schedule, latencies, and report — on every run.

* :func:`open_loop_load` — Poisson arrivals at a fixed offered rate,
  independent of service completions (models external traffic).
* :class:`ClosedLoopLoad` — a fixed population of clients, each keeping
  one job in flight and resubmitting ``think_us`` after completion
  (models interactive users; self-throttling under overload).

The :class:`LatencyReport` aggregates terminal jobs into the SLO view:
nearest-rank p50/p95/p99 latency, goodput (in-deadline completions per
simulated second), and deadline-miss rate, overall and per tenant.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.report import format_table
from repro.serve.jobs import DONE, REJECTED, Job, JobSpec
from repro.serve.server import SimServer
from repro.util.stats import percentile
from repro.util.validation import check_positive, check_range, require

#: Schema tag for serialized reports (``repro serve report``).
REPORT_SCHEMA = 1


def _spec_stream(
    rng: np.random.Generator,
    tenants: tuple[str, ...],
    model: str,
    cores: int,
    ticks_lo: int,
    ticks_hi: int,
    priority_hi: int,
    deadline_us: float | None,
    model_seed: int,
):
    """Yield an endless deterministic stream of job specs."""
    while True:
        tenant = tenants[int(rng.integers(0, len(tenants)))]
        ticks = int(rng.integers(ticks_lo, ticks_hi + 1))
        priority = int(rng.integers(0, priority_hi + 1))
        yield JobSpec(
            tenant=tenant,
            model=model,
            cores=cores,
            ticks=ticks,
            priority=priority,
            seed=model_seed,
            deadline_us=deadline_us,
        )


def open_loop_load(
    server: SimServer,
    rate_per_s: float,
    jobs: int,
    tenants: tuple[str, ...] = ("tenant-a", "tenant-b"),
    model: str = "quickstart",
    cores: int = 8,
    ticks_lo: int = 10,
    ticks_hi: int = 40,
    priority_hi: int = 4,
    deadline_us: float | None = None,
    seed: int = 0,
    model_seed: int = 42,
) -> list[int]:
    """Pre-schedule ``jobs`` Poisson arrivals at ``rate_per_s``.

    Inter-arrival gaps are exponential with mean ``1e6 / rate_per_s``
    simulated microseconds, drawn from a seeded generator.  Returns the
    submitted job ids (arrival order).
    """
    check_positive("rate_per_s", rate_per_s)
    check_positive("jobs", jobs)
    require(bool(tenants), "tenants must be non-empty")
    rng = np.random.default_rng(seed)
    specs = _spec_stream(
        rng, tuple(tenants), model, cores, ticks_lo, ticks_hi,
        priority_hi, deadline_us, model_seed,
    )
    mean_gap_us = 1e6 / rate_per_s
    t = 0.0
    ids = []
    for _ in range(jobs):
        t += float(rng.exponential(mean_gap_us))
        ids.append(server.submit(next(specs), at_us=t))
    return ids


class ClosedLoopLoad:
    """Fixed-population closed-loop clients driven by completion hooks.

    Each of ``clients`` keeps exactly one job in flight: when its job
    reaches a terminal state (done *or* rejected), the client thinks for
    ``think_us`` simulated microseconds and submits the next one, until
    ``jobs_per_client`` submissions have been made.  Call
    :meth:`start` before ``server.run()``.
    """

    def __init__(
        self,
        server: SimServer,
        clients: int = 4,
        jobs_per_client: int = 8,
        think_us: float = 1_000.0,
        tenants: tuple[str, ...] = ("tenant-a", "tenant-b"),
        model: str = "quickstart",
        cores: int = 8,
        ticks_lo: int = 10,
        ticks_hi: int = 40,
        priority_hi: int = 4,
        deadline_us: float | None = None,
        seed: int = 0,
        model_seed: int = 42,
    ) -> None:
        check_positive("clients", clients)
        check_positive("jobs_per_client", jobs_per_client)
        check_range("think_us", think_us, lo=0.0)
        require(bool(tenants), "tenants must be non-empty")
        self.server = server
        self.clients = clients
        self.jobs_per_client = jobs_per_client
        self.think_us = think_us
        self._specs = _spec_stream(
            np.random.default_rng(seed), tuple(tenants), model, cores,
            ticks_lo, ticks_hi, priority_hi, deadline_us, model_seed,
        )
        self._owner: dict[int, int] = {}
        self._submitted: dict[int, int] = {}
        self.job_ids: list[int] = []
        server.add_completion_hook(self._on_terminal)

    def start(self) -> None:
        """Submit every client's first job at t=0."""
        for client in range(self.clients):
            self._submit(client, at_us=0.0)

    def _submit(self, client: int, at_us: float) -> None:
        jid = self.server.submit(next(self._specs), at_us=at_us)
        self._owner[jid] = client
        self._submitted[client] = self._submitted.get(client, 0) + 1
        self.job_ids.append(jid)

    def _on_terminal(self, job: Job) -> None:
        client = self._owner.get(job.job_id)
        if client is None:
            return
        if self._submitted[client] >= self.jobs_per_client:
            return
        at = max(job.finish_us, job.submit_us) + self.think_us
        self._submit(client, at_us=at)


@dataclass
class TenantStats:
    """Per-tenant slice of the latency report."""

    tenant: str
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    deadline_missed: int = 0
    p50_us: float = 0.0
    p99_us: float = 0.0


@dataclass
class LatencyReport:
    """SLO accounting over the terminal jobs of one service run."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_rejected: int = 0
    deadline_missed: int = 0
    batches: int = 0
    mean_batch_size: float = 0.0
    retries: int = 0
    makespan_s: float = 0.0
    p50_us: float = 0.0
    p95_us: float = 0.0
    p99_us: float = 0.0
    goodput_per_s: float = 0.0
    miss_rate: float = 0.0
    tenants: list[TenantStats] = field(default_factory=list)

    def format(self) -> str:
        """Human-readable report (stable layout; byte-identical per run)."""
        lines = [
            "serve latency report",
            f"  jobs: submitted={self.jobs_submitted} "
            f"completed={self.jobs_completed} rejected={self.jobs_rejected}",
            f"  batches: {self.batches} (mean size {self.mean_batch_size:.2f}), "
            f"retries={self.retries}",
            f"  latency: p50={self.p50_us:.1f}us p95={self.p95_us:.1f}us "
            f"p99={self.p99_us:.1f}us",
            f"  slo: deadline_missed={self.deadline_missed} "
            f"miss_rate={self.miss_rate:.4f}",
            f"  goodput: {self.goodput_per_s:.3f} jobs/s over "
            f"{self.makespan_s:.6f} simulated s",
            "",
        ]
        rows = [
            (
                t.tenant, t.submitted, t.completed, t.rejected,
                t.deadline_missed, f"{t.p50_us:.1f}", f"{t.p99_us:.1f}",
            )
            for t in self.tenants
        ]
        lines.append(
            format_table(
                ("tenant", "submitted", "completed", "rejected",
                 "missed", "p50_us", "p99_us"),
                rows,
            )
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Stable JSON form (sorted keys) for ``repro serve report``."""
        payload = {
            "schema": REPORT_SCHEMA,
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_rejected": self.jobs_rejected,
            "deadline_missed": self.deadline_missed,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "retries": self.retries,
            "makespan_s": self.makespan_s,
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "goodput_per_s": self.goodput_per_s,
            "miss_rate": self.miss_rate,
            "tenants": [
                {
                    "tenant": t.tenant,
                    "submitted": t.submitted,
                    "completed": t.completed,
                    "rejected": t.rejected,
                    "deadline_missed": t.deadline_missed,
                    "p50_us": t.p50_us,
                    "p99_us": t.p99_us,
                }
                for t in self.tenants
            ],
        }
        return json.dumps(payload, sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "LatencyReport":
        data = json.loads(text)
        if data.get("schema") != REPORT_SCHEMA:
            raise ConfigurationError(
                f"unsupported serve report schema {data.get('schema')!r}"
            )
        tenants = [
            TenantStats(
                tenant=t["tenant"],
                submitted=t["submitted"],
                completed=t["completed"],
                rejected=t["rejected"],
                deadline_missed=t["deadline_missed"],
                p50_us=t["p50_us"],
                p99_us=t["p99_us"],
            )
            for t in data["tenants"]
        ]
        return cls(
            jobs_submitted=data["jobs_submitted"],
            jobs_completed=data["jobs_completed"],
            jobs_rejected=data["jobs_rejected"],
            deadline_missed=data["deadline_missed"],
            batches=data["batches"],
            mean_batch_size=data["mean_batch_size"],
            retries=data["retries"],
            makespan_s=data["makespan_s"],
            p50_us=data["p50_us"],
            p95_us=data["p95_us"],
            p99_us=data["p99_us"],
            goodput_per_s=data["goodput_per_s"],
            miss_rate=data["miss_rate"],
            tenants=tenants,
        )


def build_report(server: SimServer) -> LatencyReport:
    """Aggregate a finished server's terminal jobs into a report."""
    terminal = server.finished_jobs()
    done = [j for j in terminal if j.status == DONE]
    rejected = [j for j in terminal if j.status == REJECTED]
    report = LatencyReport(
        jobs_submitted=len(terminal),
        jobs_completed=len(done),
        jobs_rejected=len(rejected),
        batches=len(server.batches),
        retries=sum(b.retries for b in server.batches),
    )
    if server.batches:
        report.mean_batch_size = sum(b.size for b in server.batches) / len(
            server.batches
        )
    if done:
        latencies = [j.latency_us for j in done]
        report.p50_us = percentile(latencies, 50.0)
        report.p95_us = percentile(latencies, 95.0)
        report.p99_us = percentile(latencies, 99.0)
        first = min(j.submit_us for j in done)
        last = max(j.finish_us for j in done)
        report.makespan_s = (last - first) / 1e6
    missed = [j for j in terminal if j.deadline_missed]
    report.deadline_missed = len(missed)
    if terminal:
        report.miss_rate = len(missed) / len(terminal)
    good = sum(1 for j in done if not j.deadline_missed)
    if report.makespan_s > 0:
        report.goodput_per_s = good / report.makespan_s
    tenant_names = sorted({j.spec.tenant for j in terminal})
    for name in tenant_names:
        mine = [j for j in terminal if j.spec.tenant == name]
        mine_done = [j for j in mine if j.status == DONE]
        stats = TenantStats(
            tenant=name,
            submitted=len(mine),
            completed=len(mine_done),
            rejected=sum(1 for j in mine if j.status == REJECTED),
            deadline_missed=sum(1 for j in mine if j.deadline_missed),
        )
        if mine_done:
            lat = [j.latency_us for j in mine_done]
            stats.p50_us = percentile(lat, 50.0)
            stats.p99_us = percentile(lat, 99.0)
        report.tenants.append(stats)
    return report
