"""Batch formation: group compatible jobs into one virtual-cluster launch.

Building a network, compiling it, and setting up the virtual cluster is
the expensive part of serving a simulation job (``setup_us`` in the cost
model dwarfs per-tick cost for short jobs).  Jobs that simulate the same
network — same :attr:`JobSpec.batch_key` — can share one launch: the
batch runs to its longest member's tick budget and each job completes at
its own, so the setup cost is paid once and amortised across the batch.

The batcher trades latency for goodput with two knobs:

``max_batch_size``
    Launch as soon as this many compatible jobs are waiting.
``max_batch_delay_us``
    Otherwise, hold the queue head at most this long (simulated time)
    waiting for companions before launching whatever is compatible.

With ``max_batch_delay_us=0`` batching is effectively disabled: every
launch takes whatever is compatible *right now*, which under light load
is a single job.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve.jobs import Job
from repro.serve.queue import FairShareQueue
from repro.util.validation import check_positive, check_range


@dataclass
class Batch:
    """A group of batch-compatible jobs sharing one launch."""

    key: tuple[str, int, int]
    jobs: list[Job] = field(default_factory=list)
    launch_us: float = 0.0

    @property
    def size(self) -> int:
        return len(self.jobs)

    @property
    def max_ticks(self) -> int:
        """The batch runs until its longest member's budget is done."""
        return max(job.spec.ticks for job in self.jobs)


@dataclass(frozen=True)
class BatchPolicy:
    """Batch-formation knobs (validated)."""

    max_batch_size: int = 8
    max_batch_delay_us: float = 0.0

    def __post_init__(self) -> None:
        check_positive("max_batch_size", self.max_batch_size)
        check_range("max_batch_delay_us", self.max_batch_delay_us, lo=0.0)


class Batcher:
    """Decides when the queue head should launch and forms its batch."""

    def __init__(self, policy: BatchPolicy | None = None) -> None:
        self.policy = policy or BatchPolicy()

    def ready_at(self, queue: FairShareQueue, now_us: float) -> float | None:
        """When should the current queue head launch?

        Returns ``None`` if the queue is empty, ``now_us`` if the head
        should launch immediately (full batch available, or its delay
        budget is spent), or the future simulated instant at which the
        head's delay budget runs out — the caller schedules a flush
        event there.
        """
        head = queue.peek()
        if head is None:
            return None
        if queue.count_compatible(head.spec.batch_key) >= self.policy.max_batch_size:
            return now_us
        deadline = head.submit_us + self.policy.max_batch_delay_us
        if deadline <= now_us:
            return now_us
        return deadline

    def form(self, queue: FairShareQueue, now_us: float) -> Batch | None:
        """Pop the head's batch from the queue (up to ``max_batch_size``)."""
        head = queue.peek()
        if head is None:
            return None
        key = head.spec.batch_key
        jobs = queue.pop_compatible(key, self.policy.max_batch_size)
        if not jobs:
            return None
        return Batch(key=key, jobs=jobs, launch_us=now_us)
