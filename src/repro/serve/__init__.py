"""Deterministic multi-tenant simulation service (soft real-time, §VI).

The serving layer turns the Compass simulators into a *service*: jobs
from multiple tenants pass admission control, wait in a weighted
fair-share queue, get batched with compatible jobs to amortise
virtual-cluster setup, and run on a worker pool — all on one simulated
timeline, so every latency, percentile, and SLO number is exactly
reproducible from a seed.

Modules:

* :mod:`~repro.serve.jobs` — typed :class:`JobSpec` / runtime job records;
* :mod:`~repro.serve.queue` — admission quotas + fair-share scheduling;
* :mod:`~repro.serve.batcher` — compatibility batching with a delay knob;
* :mod:`~repro.serve.server` — the discrete-event worker-pool service;
* :mod:`~repro.serve.loadgen` — seeded load generators + latency report.

See ``docs/serving.md``.
"""

from __future__ import annotations

from repro.serve.batcher import Batch, Batcher, BatchPolicy
from repro.serve.jobs import Job, JobSpec, compatible
from repro.serve.loadgen import (
    ClosedLoopLoad,
    LatencyReport,
    TenantStats,
    build_report,
    open_loop_load,
)
from repro.serve.queue import FairShareQueue, TenantQuota
from repro.serve.server import (
    BACKENDS,
    ServeConfig,
    ServeCostModel,
    SimServer,
    build_network,
)

__all__ = [
    "Batch",
    "Batcher",
    "BatchPolicy",
    "Job",
    "JobSpec",
    "compatible",
    "ClosedLoopLoad",
    "LatencyReport",
    "TenantStats",
    "build_report",
    "open_loop_load",
    "FairShareQueue",
    "TenantQuota",
    "BACKENDS",
    "ServeConfig",
    "ServeCostModel",
    "SimServer",
    "build_network",
]
