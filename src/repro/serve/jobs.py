"""Typed job specifications and runtime job records for ``repro.serve``.

A :class:`JobSpec` is what a tenant asks for: which model to simulate,
how many ticks, at what priority, and by when (a deadline on the
*simulated* timeline — the service never consults the host clock).  A
:class:`Job` is the service's runtime record of one submitted spec: its
admission outcome, timestamps, and final accounting.

Batch compatibility
-------------------
Two jobs can share one virtual-cluster launch when they simulate the
same network: same model kind, same core count, same model seed.  That
triple is :attr:`JobSpec.batch_key`; the batcher
(:mod:`repro.serve.batcher`) groups by it to amortise compile/setup
cost.  The tick budget deliberately does **not** participate — a batch
runs to its longest member's budget and each job completes at its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_positive, check_range, require

#: Model kinds the service can build (see ``repro.serve.server``).
MODELS = ("quickstart", "macaque")

#: Priority classes: 0 is the most urgent, 9 the least.
MAX_PRIORITY = 9

#: Job lifecycle states.
QUEUED = "queued"
REJECTED = "rejected"
RUNNING = "running"
DONE = "done"


@dataclass(frozen=True)
class JobSpec:
    """One tenant request, validated at construction.

    Attributes
    ----------
    tenant:
        Owning tenant name (admission quotas and fair share key off it).
    model:
        Model kind — one of :data:`MODELS`.
    cores:
        Network size in neurosynaptic cores.
    ticks:
        Tick budget: how many simulated ticks the job needs.
    priority:
        Priority class, 0 (most urgent) .. :data:`MAX_PRIORITY`.
    seed:
        Model seed; part of the batch key (different seeds are different
        networks and cannot share a launch).
    deadline_us:
        Latency budget in simulated microseconds, measured from
        submission; ``None`` means no SLO.
    """

    tenant: str
    model: str = "quickstart"
    cores: int = 8
    ticks: int = 20
    priority: int = 4
    seed: int = 0
    deadline_us: float | None = None

    def __post_init__(self) -> None:
        require(bool(self.tenant), "tenant must be a non-empty string")
        require(
            self.model in MODELS,
            f"model={self.model!r} not one of {MODELS}",
        )
        check_range("cores", self.cores, lo=2)
        check_positive("ticks", self.ticks)
        check_range("priority", self.priority, lo=0, hi=MAX_PRIORITY)
        if self.deadline_us is not None:
            check_positive("deadline_us", self.deadline_us)

    @property
    def batch_key(self) -> tuple[str, int, int]:
        """Jobs with equal keys may share one virtual-cluster launch."""
        return (self.model, self.cores, self.seed)

    def demand(self) -> float:
        """Service-demand proxy for fair-share accounting (core-ticks)."""
        return float(self.ticks * self.cores)


def compatible(a: JobSpec, b: JobSpec) -> bool:
    """Batch-compatibility predicate: may ``a`` and ``b`` share a launch?"""
    return a.batch_key == b.batch_key


@dataclass
class Job:
    """Runtime record of one submitted job, on the simulated timeline.

    All timestamps are simulated microseconds.  ``finish_us`` is the
    job's own completion instant inside its batch (a 10-tick job in a
    30-tick batch finishes when its 10 ticks are done), not the batch's.
    """

    spec: JobSpec
    job_id: int
    submit_us: float = 0.0
    status: str = QUEUED
    launch_us: float = -1.0
    finish_us: float = -1.0
    batch_id: int = -1
    batch_size: int = 0
    retries: int = 0
    reject_reason: str = ""
    #: Simulated recovery overhead charged to this job's batch (faults).
    overhead_us: float = 0.0
    #: Current :class:`repro.obs.live.context.TraceContext` of this job's
    #: causal trace (None unless tracing is enabled; each traced stage
    #: replaces it with its child context).  Kept untyped so the job
    #: record never imports the observability layer that instruments it.
    trace: object | None = None

    @property
    def latency_us(self) -> float:
        """Submission-to-completion latency; -1 until the job is done."""
        if self.status != DONE:
            return -1.0
        return self.finish_us - self.submit_us

    @property
    def wait_us(self) -> float:
        """Queue wait plus batch-formation delay (submission to launch)."""
        if self.launch_us < 0:
            return -1.0
        return self.launch_us - self.submit_us

    @property
    def run_us(self) -> float:
        """Setup plus execution time inside the batch."""
        if self.status != DONE:
            return -1.0
        return self.finish_us - self.launch_us

    @property
    def deadline_missed(self) -> bool:
        """Did the job complete after its SLO deadline (or never)?"""
        if self.spec.deadline_us is None:
            return False
        if self.status != DONE:
            return self.status == REJECTED
        return self.latency_us > self.spec.deadline_us


@dataclass
class BatchRecord:
    """Accounting for one launched batch (for reports and tests)."""

    batch_id: int
    key: tuple[str, int, int]
    job_ids: list[int] = field(default_factory=list)
    launch_us: float = 0.0
    end_us: float = 0.0
    max_ticks: int = 0
    worker: int = -1
    retries: int = 0
    overhead_us: float = 0.0

    @property
    def size(self) -> int:
        return len(self.job_ids)
