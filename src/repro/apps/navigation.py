"""Closed-loop robotic navigation (§I: "real-time motor control",
"robotic navigation").

A Braitenberg-style controller on TrueNorth cores: range sensors around
the agent inject spikes proportional to obstacle proximity; a steering
core votes among {left, straight, right} with obstacle-driven inhibition
(an obstacle on the left inhibits turning left); the winning action moves
the agent on a 2-D grid world.  The whole loop — encode, simulate a few
ticks, decode, act — runs once per world step, exactly the structure a
real-time Compass deployment would use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.builder import NetworkBuilder
from repro.arch.params import NeuronParameters
from repro.core.config import CompassConfig
from repro.core.simulator import Compass

#: Steering actions, as (rotation) applied to the heading index.
ACTIONS = ("left", "straight", "right")

#: Heading index -> (dy, dx) on the grid; 0=N, 1=E, 2=S, 3=W.
HEADINGS = ((-1, 0), (0, 1), (1, 0), (0, -1))


@dataclass
class GridWorld:
    """A 2-D occupancy grid with an agent pose."""

    grid: np.ndarray  #: bool (rows, cols); True = obstacle
    y: int
    x: int
    heading: int = 1  #: index into HEADINGS
    steps: int = 0
    collisions: int = 0
    trace: list = field(default_factory=list)

    @classmethod
    def corridor(cls, length: int = 24, width: int = 7) -> "GridWorld":
        """A walled corridor with a staggered obstacle slalom."""
        grid = np.zeros((width, length), dtype=bool)
        grid[0, :] = grid[-1, :] = True  # walls
        for i, col in enumerate(range(4, length - 2, 4)):
            row = 2 if i % 2 == 0 else width - 3
            grid[row, col] = True
        return cls(grid=grid, y=width // 2, x=1, heading=1)

    def sense(self, max_range: int = 3) -> np.ndarray:
        """Proximity readings in [0, 1] for (left, front, right) rays."""
        readings = []
        for turn in (-1, 0, 1):
            h = (self.heading + turn) % 4
            dy, dx = HEADINGS[h]
            proximity = 0.0
            for r in range(1, max_range + 1):
                yy, xx = self.y + dy * r, self.x + dx * r
                if (
                    not (0 <= yy < self.grid.shape[0] and 0 <= xx < self.grid.shape[1])
                    or self.grid[yy, xx]
                ):
                    proximity = (max_range - r + 1) / max_range
                    break
            readings.append(proximity)
        return np.array(readings)

    def act(self, action: str) -> None:
        """Turn per the action, then advance one cell if free."""
        self.steps += 1
        if action == "left":
            self.heading = (self.heading - 1) % 4
        elif action == "right":
            self.heading = (self.heading + 1) % 4
        dy, dx = HEADINGS[self.heading]
        ny, nx = self.y + dy, self.x + dx
        blocked = (
            not (0 <= ny < self.grid.shape[0] and 0 <= nx < self.grid.shape[1])
            or self.grid[ny, nx]
        )
        if blocked:
            self.collisions += 1
        else:
            self.y, self.x = ny, nx
        self.trace.append((self.y, self.x, self.heading))

    @property
    def progress(self) -> int:
        """Columns travelled from the start."""
        return self.x - 1


class SpikingNavigator:
    """The TrueNorth controller: 3 sensor lanes -> 3-way steering WTA.

    Crossbar layout on one core: sensor axon *s* (0..2) excites the two
    actions that steer *away* from ray *s* and inhibits the action toward
    it (axon types: 0 = excitatory +2, 1 = inhibitory −4, so an active
    obstacle ray vetoes its action outright).  A constant bias axon
    excites 'straight' so the agent moves when nothing is sensed.
    """

    N_SENSORS = 3
    BIAS_AXON = 6

    def __init__(self, seed: int = 0, ticks_per_step: int = 4) -> None:
        self.ticks_per_step = ticks_per_step
        builder = NetworkBuilder(seed=seed)
        dense = np.zeros((256, 256), dtype=bool)
        types = np.zeros(256, dtype=np.uint8)
        # Excitatory sensor copies on axons 0..2, inhibitory on 3..5.
        for s in range(self.N_SENSORS):
            for a, action in enumerate(ACTIONS):
                if a == s:  # obstacle on ray s inhibits steering into it
                    dense[3 + s, a] = True
                else:
                    dense[s, a] = True
            types[3 + s] = 1
        dense[self.BIAS_AXON, 1] = True  # bias -> 'straight'
        builder.add_population(
            "steering",
            1,
            neuron=NeuronParameters(
                weights=(2, -4, 0, 0), leak=-1, threshold=2, floor=-4
            ),
            crossbar=dense,
            axon_types=types,
        )
        self.network, _, _ = builder.build()

    def decide(self, readings: np.ndarray, seed: int) -> str:
        """One control step: encode readings, run, decode the action."""
        sim = Compass(self.network, CompassConfig(record_spikes=True))
        rng = np.random.default_rng(seed)
        for t in range(self.ticks_per_step):
            sim.inject(0, self.BIAS_AXON, t)  # constant drive
            for s, level in enumerate(readings):
                # Rate-code proximity on both the + and - copies.
                if rng.random() < level:
                    sim.inject(0, s, t)
                    sim.inject(0, 3 + s, t)
        sim.run(self.ticks_per_step + 2)
        _, _, neurons = sim.recorder.to_arrays()
        votes = np.bincount(neurons, minlength=3)[:3]
        return ACTIONS[int(np.argmax(votes))]


def navigate(
    world: GridWorld | None = None,
    max_steps: int = 60,
    seed: int = 0,
) -> GridWorld:
    """Run the closed loop until the corridor end or the step budget."""
    world = world or GridWorld.corridor()
    nav = SpikingNavigator(seed=seed)
    goal_x = world.grid.shape[1] - 2
    for step in range(max_steps):
        if world.x >= goal_x:
            break
        action = nav.decide(world.sense(), seed=seed * 10_007 + step)
        world.act(action)
    return world


def render(world: GridWorld) -> str:
    """ASCII view of the grid, path, and agent."""
    chars = np.where(world.grid, "#", ".").astype(object)
    for y, x, _ in world.trace:
        chars[y, x] = "*"
    marker = {0: "^", 1: ">", 2: "v", 3: "<"}[world.heading]
    chars[world.y, world.x] = marker
    return "\n".join("".join(row) for row in chars)
