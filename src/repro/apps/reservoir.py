"""Spatio-temporal feature extraction (§I application list).

A liquid-state machine on TrueNorth cores: input spike streams drive a
random recurrent reservoir core whose transient dynamics project the
input's recent history into a high-dimensional spiking state; a linear
readout (ridge regression, trained off-chip as in standard LSM practice)
classifies temporal patterns from time-binned reservoir spike counts.

The reservoir is one core built with :class:`NetworkBuilder`: input lanes
on reserved axons, recurrent wiring through the core's own neurons (each
neuron targets a reservoir axon), balanced excitation/inhibition keeping
the dynamics in the fading-memory regime.
"""

from __future__ import annotations

import numpy as np

from repro.arch.builder import NetworkBuilder
from repro.arch.params import NeuronParameters
from repro.core.config import CompassConfig
from repro.core.simulator import Compass


class SpikingReservoir:
    """One-core recurrent liquid with reserved input lanes."""

    def __init__(
        self,
        n_inputs: int = 16,
        recurrent_fraction: float = 0.5,
        density: float = 0.05,
        excitatory_fraction: float = 0.55,
        seed: int = 0,
    ) -> None:
        if not 1 <= n_inputs <= 64:
            raise ValueError("n_inputs must be in [1, 64]")
        self.n_inputs = n_inputs
        self.seed = seed
        # Axon layout: the first n_inputs axons are the reserved input
        # lanes and carry a strong dedicated type (type 2, weight +4);
        # the remaining axons host the recurrent feedback, split into
        # excitatory (type 0, +2) and inhibitory (type 1, -2).  The
        # inhibition-dominant balance keeps the liquid in the fading-
        # memory regime (calibrated: ~2x amplification of input events,
        # no runaway).
        types = np.ones(256, dtype=np.uint8)
        types[:n_inputs] = 2
        n_exc = int((256 - n_inputs) * excitatory_fraction)
        types[n_inputs : n_inputs + n_exc] = 0
        builder = NetworkBuilder(seed=seed)
        pop = builder.add_population(
            "liquid",
            1,
            neuron=NeuronParameters(
                weights=(2, -2, 4, 0),
                leak=-1,
                threshold=4,
                floor=-16,
            ),
            crossbar=density,
            axon_types=types,
        )
        self.input_id = builder.reserve_inputs(pop, n_inputs)
        n_recurrent = int(256 * recurrent_fraction)
        builder.connect("liquid", "liquid", n_recurrent, delay=1)
        self.network, self.pops, ports = builder.build()
        self.port = ports[self.input_id]

    def states(
        self, stream: np.ndarray, bin_width: int = 5, settle: int = 2
    ) -> np.ndarray:
        """Run one input stream; return binned reservoir state features.

        ``stream`` is (ticks, n_inputs) boolean; the return value is the
        flattened (bins × 256) spike-count matrix — the LSM feature vector.
        """
        stream = np.asarray(stream, dtype=bool)
        if stream.ndim != 2 or stream.shape[1] != self.n_inputs:
            raise ValueError(f"stream must be (ticks, {self.n_inputs})")
        ticks = stream.shape[0] + settle
        sim = Compass(self.network, CompassConfig(record_spikes=True))
        schedule = {
            t: np.where(stream[t])[0] for t in range(stream.shape[0])
        }
        sim.attach_schedule(self.port.schedule_for(schedule))
        sim.run(ticks)
        t, g, n = sim.recorder.to_arrays()
        n_bins = max(1, ticks // bin_width)
        feats = np.zeros((n_bins, 256), dtype=float)
        keep = t // bin_width < n_bins
        np.add.at(feats, (t[keep] // bin_width, n[keep]), 1.0)
        return feats.ravel()


class RidgeReadout:
    """Linear readout over reservoir features (one-vs-all ridge)."""

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha
        self.weights: np.ndarray | None = None
        self.classes: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RidgeReadout":
        x = np.asarray(features, dtype=float)
        y = np.asarray(labels)
        self.classes = np.unique(y)
        targets = (y[:, None] == self.classes[None, :]).astype(float)
        x1 = np.hstack([x, np.ones((x.shape[0], 1))])  # bias column
        gram = x1.T @ x1 + self.alpha * np.eye(x1.shape[1])
        self.weights = np.linalg.solve(gram, x1.T @ targets)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("readout is not fitted")
        x = np.atleast_2d(np.asarray(features, dtype=float))
        x1 = np.hstack([x, np.ones((x.shape[0], 1))])
        scores = x1 @ self.weights
        return self.classes[np.argmax(scores, axis=1)]


def temporal_pattern(
    kind: str, n_inputs: int, ticks: int, rate: float = 0.25, seed: int = 0
) -> np.ndarray:
    """Synthetic temporal pattern families for the feature-extraction demo.

    ``rising`` sweeps activity from low to high input lanes over time,
    ``falling`` sweeps the other way, ``steady`` holds a flat rate.  All
    three have identical *total* spike counts in expectation, so they are
    only separable through spatio-temporal structure.
    """
    rng = np.random.default_rng(seed)
    stream = np.zeros((ticks, n_inputs), dtype=bool)
    for t in range(ticks):
        phase = t / max(ticks - 1, 1)
        if kind == "rising":
            centre = phase * (n_inputs - 1)
        elif kind == "falling":
            centre = (1.0 - phase) * (n_inputs - 1)
        elif kind == "steady":
            centre = (n_inputs - 1) / 2
        else:
            raise ValueError(f"unknown pattern kind {kind!r}")
        dist = np.abs(np.arange(n_inputs) - centre)
        p = rate * np.exp(-((dist / (n_inputs / 6)) ** 2))
        stream[t] = rng.random(n_inputs) < p
    return stream


def lsm_experiment(
    kinds: tuple[str, ...] = ("rising", "falling", "steady"),
    train_per_class: int = 6,
    test_per_class: int = 3,
    ticks: int = 30,
    seed: int = 0,
) -> float:
    """End-to-end LSM accuracy on the synthetic pattern families."""
    reservoir = SpikingReservoir(seed=seed)
    feats, labels = [], []
    tests, test_labels = [], []
    for ci, kind in enumerate(kinds):
        for s in range(train_per_class + test_per_class):
            stream = temporal_pattern(
                kind, reservoir.n_inputs, ticks, seed=seed * 1000 + ci * 100 + s
            )
            f = reservoir.states(stream)
            if s < train_per_class:
                feats.append(f)
                labels.append(ci)
            else:
                tests.append(f)
                test_labels.append(ci)
    readout = RidgeReadout(alpha=5.0).fit(np.array(feats), np.array(labels))
    predictions = readout.predict(np.array(tests))
    return float((predictions == np.array(test_labels)).mean())
