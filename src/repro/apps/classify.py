"""Spiking template classification — the paper's "character recognition"
application family (§I).

One core per class: the class template is written into the crossbar so
that every axon corresponding to a template pixel feeds a bank of match
neurons, and off-template axons feed the same bank inhibitorily.  An input
glyph is presented as pixel spikes for a few ticks; the class whose
matched-minus-mismatched evidence crosses threshold most often wins.
"""

from __future__ import annotations

import numpy as np

from repro.arch.network import CoreNetwork
from repro.arch.params import NeuronParameters
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.apps.decoders import counts_by_gid
from repro.apps.encoders import image_to_spikes

#: 8x8 binary glyphs for digits 0-4, enough to exercise the pipeline.
DIGIT_GLYPHS: dict[int, np.ndarray] = {
    0: np.array(
        [
            "..####..",
            ".#....#.",
            ".#....#.",
            ".#....#.",
            ".#....#.",
            ".#....#.",
            ".#....#.",
            "..####..",
        ]
    ),
    1: np.array(
        [
            "...##...",
            "..###...",
            "...##...",
            "...##...",
            "...##...",
            "...##...",
            "...##...",
            ".######.",
        ]
    ),
    2: np.array(
        [
            "..####..",
            ".#....#.",
            "......#.",
            ".....#..",
            "....#...",
            "...#....",
            "..#.....",
            ".######.",
        ]
    ),
    3: np.array(
        [
            "..####..",
            ".#....#.",
            "......#.",
            "...###..",
            "......#.",
            "......#.",
            ".#....#.",
            "..####..",
        ]
    ),
    4: np.array(
        [
            "....##..",
            "...#.#..",
            "..#..#..",
            ".#...#..",
            ".######.",
            ".....#..",
            ".....#..",
            ".....#..",
        ]
    ),
}


def glyph_to_array(glyph: np.ndarray) -> np.ndarray:
    """Convert a string-row glyph into a (8, 8) boolean array."""
    return np.array([[ch == "#" for ch in row] for row in glyph], dtype=bool)


class TemplateClassifier:
    """One TrueNorth core per class, template match in the crossbar."""

    def __init__(
        self,
        templates: dict[int, np.ndarray],
        match_threshold_fraction: float = 0.7,
        seed: int = 0,
    ) -> None:
        if not templates:
            raise ValueError("need at least one template")
        self.labels = sorted(templates)
        self.templates = {k: glyph_to_array(v) for k, v in templates.items()}
        shapes = {t.shape for t in self.templates.values()}
        if len(shapes) != 1:
            raise ValueError("all templates must share one shape")
        self.shape = shapes.pop()
        self.n_pixels = int(np.prod(self.shape))
        if self.n_pixels > 256:
            raise ValueError("templates must fit the 256-axon crossbar")
        self.match_threshold_fraction = match_threshold_fraction
        self.network = self._build_network(seed)

    def _build_network(self, seed: int) -> CoreNetwork:
        net = CoreNetwork(len(self.labels), seed=seed)
        for gid, label in enumerate(self.labels):
            tpl = self.templates[label].ravel()
            dense = np.zeros((net.num_axons, net.num_neurons), dtype=bool)
            types = np.zeros(net.num_axons, dtype=np.uint8)
            # All pixel axons feed match neuron 0; template pixels are
            # excitatory (type 0), off-template pixels inhibitory (type 1).
            dense[: self.n_pixels, 0] = True
            types[: self.n_pixels] = np.where(tpl, 0, 1).astype(np.uint8)
            net.set_crossbar(gid, dense)
            net.set_axon_types(gid, types)
            on_pixels = int(tpl.sum())
            threshold = max(1, int(on_pixels * self.match_threshold_fraction))
            net.set_neurons(
                gid,
                NeuronParameters(
                    weights=(1, -1, 0, 0), threshold=threshold, floor=0
                ),
            )
        return net

    def classify(self, image: np.ndarray, repeats: int = 3) -> int:
        """Present ``image`` and return the predicted label."""
        image = np.asarray(image)
        if image.shape != self.shape:
            raise ValueError(f"image shape {image.shape} != {self.shape}")
        sim = Compass(
            self.network,
            CompassConfig(n_processes=1, record_spikes=True),
        )
        schedule = image_to_spikes(image, repeats=repeats)
        active = np.where(image.ravel() > 0)[0]
        for tick, axons in schedule.items():
            for gid in range(len(self.labels)):
                sim.inject_batch(np.full(axons.shape, gid), axons, tick)
        _ = active  # appease linters: schedule already covers all pixels
        sim.run(repeats + 2)  # +2: injection delay slot and readout
        counts = counts_by_gid(sim.recorder, len(self.labels))
        return self.labels[int(np.argmax(counts))]

    def accuracy(self, samples: list[tuple[np.ndarray, int]], repeats: int = 3) -> float:
        """Fraction of (image, label) samples classified correctly."""
        if not samples:
            raise ValueError("no samples")
        correct = sum(
            1 for img, label in samples if self.classify(img, repeats) == label
        )
        return correct / len(samples)


def noisy_glyph(label: int, flips: int, seed: int = 0) -> np.ndarray:
    """A digit glyph with ``flips`` random pixels toggled (test workload)."""
    img = glyph_to_array(DIGIT_GLYPHS[label]).copy()
    rng = np.random.default_rng(seed)
    idx = rng.choice(img.size, size=flips, replace=False)
    flat = img.ravel()
    flat[idx] = ~flat[idx]
    return flat.reshape(img.shape)
