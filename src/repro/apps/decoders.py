"""Spike decoders: rasters/recorders → data."""

from __future__ import annotations

import numpy as np

from repro.core.simulator import SpikeRecorder


def spike_counts(raster: np.ndarray) -> np.ndarray:
    """Per-neuron spike counts from a (ticks, neurons) raster."""
    raster = np.asarray(raster)
    if raster.ndim != 2:
        raise ValueError("raster must be 2-D (ticks, neurons)")
    return raster.sum(axis=0).astype(np.int64)


def rates_from_counts(counts: np.ndarray, ticks: int) -> np.ndarray:
    """Convert spike counts to Hz (1 ms ticks)."""
    if ticks <= 0:
        raise ValueError("ticks must be positive")
    return np.asarray(counts, dtype=float) / (ticks / 1000.0)


def argmax_decode(counts: np.ndarray) -> int:
    """Winner index; ties break toward the lowest index (deterministic)."""
    counts = np.asarray(counts)
    return int(np.argmax(counts))


def counts_by_gid(recorder: SpikeRecorder, n_cores: int) -> np.ndarray:
    """Total spikes per core from a full-run spike trace."""
    _, gids, _ = recorder.to_arrays()
    out = np.zeros(n_cores, dtype=np.int64)
    np.add.at(out, gids, 1)
    return out


def raster_of_core(
    recorder: SpikeRecorder, gid: int, ticks: int, n_neurons: int
) -> np.ndarray:
    """Rebuild one core's (ticks, neurons) raster from a spike trace."""
    t, g, n = recorder.to_arrays()
    sel = g == gid
    raster = np.zeros((ticks, n_neurons), dtype=bool)
    tt = t[sel]
    nn = n[sel]
    keep = tt < ticks
    raster[tt[keep], nn[keep]] = True
    return raster
