"""Spike encoders: data → input spike schedules.

An input schedule is a ``dict[tick, np.ndarray-of-axons]`` suitable for
:meth:`repro.arch.core.NeurosynapticCore.run` or, with gids, for
:meth:`repro.core.simulator.CompassBase.inject_batch`.
"""

from __future__ import annotations

import numpy as np


def rate_encode(
    values: np.ndarray,
    ticks: int,
    max_rate: float = 0.5,
    seed: int = 0,
) -> dict[int, np.ndarray]:
    """Bernoulli rate coding: value ``v ∈ [0, 1]`` on axon *i* spikes with
    probability ``v × max_rate`` each tick.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError("values must be 1-D (one entry per axon)")
    if np.any((values < 0) | (values > 1)):
        raise ValueError("values must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    schedule: dict[int, np.ndarray] = {}
    probs = values * max_rate
    for t in range(ticks):
        hits = np.where(rng.random(values.size) < probs)[0]
        if hits.size:
            schedule[t] = hits
    return schedule


def poisson_schedule(
    n_axons: int, rate_hz: float, ticks: int, seed: int = 0
) -> dict[int, np.ndarray]:
    """Homogeneous Poisson-ish input at ``rate_hz`` per axon (1 ms ticks)."""
    p = rate_hz / 1000.0
    if not 0 <= p <= 1:
        raise ValueError("rate_hz out of range for 1 ms ticks")
    rng = np.random.default_rng(seed)
    schedule: dict[int, np.ndarray] = {}
    for t in range(ticks):
        hits = np.where(rng.random(n_axons) < p)[0]
        if hits.size:
            schedule[t] = hits
    return schedule


def image_to_spikes(
    image: np.ndarray, repeats: int = 1, start_tick: int = 0
) -> dict[int, np.ndarray]:
    """Binary-image coding: each set pixel spikes its axon once per repeat.

    Pixels are flattened row-major onto axons; the image is presented
    ``repeats`` times on consecutive ticks (temporal redundancy lets
    threshold-N readouts integrate evidence).
    """
    image = np.asarray(image)
    active = np.where(image.ravel() > 0)[0]
    return {start_tick + r: active.copy() for r in range(repeats)}
