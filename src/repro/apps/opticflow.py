"""Direction-selective motion detection ("optic flow", §I) using axonal
delays.

A Reichardt-style detector correlates a pixel's signal with a *delayed*
copy of its neighbour's: rightward motion makes the delayed left-pixel
spike coincide with the direct right-pixel spike, driving a
rightward-selective neuron past threshold.  The TrueNorth substrate gives
the delay for free — it is the per-connection axonal delay of §II — so one
core implements a full 1-D detector array: for each interior pixel *i*,
axon ``2i`` carries the direct signal and axon ``2i+1`` the delayed
neighbour signal, and coincidence neurons require both.
"""

from __future__ import annotations

import numpy as np

from repro.arch.core import NeurosynapticCore
from repro.arch.params import NeuronParameters


class MotionDetector1D:
    """Reichardt detector bank over a 1-D pixel array on one core.

    Neurons ``0 .. n_pixels-2`` are rightward-selective; neurons
    ``128 .. 128+n_pixels-2`` are leftward-selective.
    """

    LEFT_BANK = 128

    def __init__(self, n_pixels: int, delay: int = 1, seed: int = 0) -> None:
        if not 2 <= n_pixels <= 64:
            raise ValueError("n_pixels must be within [2, 64]")
        self.n_pixels = n_pixels
        self.delay = delay
        self.core = NeurosynapticCore(seed=seed)

        dense = np.zeros((256, 256), dtype=bool)
        # Rightward: neuron i fires when pixel i+1 spikes now AND pixel i
        # spiked `delay` ticks ago.  Axon layout: direct axons 0..n-1,
        # delayed axons 64..64+n-1 (the caller injects the delayed copies).
        for i in range(n_pixels - 1):
            dense[i + 1, i] = True  # direct neighbour
            dense[64 + i, i] = True  # delayed self
        # Leftward: neuron LEFT_BANK+i pairs direct pixel i with delayed i+1.
        for i in range(n_pixels - 1):
            dense[i, self.LEFT_BANK + i] = True
            dense[64 + i + 1, self.LEFT_BANK + i] = True
        self.core.set_crossbar(dense)
        self.core.set_axon_types(np.zeros(256, dtype=np.uint8))
        # Coincidence detection: one event contributes 2-1=1 (then decays to
        # 0 next tick), two simultaneous events contribute 4-1=3 = threshold.
        self.core.set_all_neurons(
            NeuronParameters(weights=(2, 0, 0, 0), leak=-1, threshold=3, floor=0)
        )

    def present(self, frames: np.ndarray) -> np.ndarray:
        """Run a (ticks, n_pixels) binary stimulus; return the raster.

        Each frame's active pixels are injected on the direct axons with
        delay 1 and on the delayed-copy axons with delay ``1 + delay``.
        """
        frames = np.asarray(frames, dtype=bool)
        if frames.ndim != 2 or frames.shape[1] != self.n_pixels:
            raise ValueError(f"frames must be (ticks, {self.n_pixels})")
        ticks = frames.shape[0] + self.delay + 2
        for t, frame in enumerate(frames):
            active = np.where(frame)[0]
            if active.size == 0:
                continue
            # Direct copies.
            self.core._ensure_block().buffers.schedule(
                np.zeros(active.size, dtype=np.int64),
                active,
                np.full(active.size, 1),
                t,
            )
            # Delayed copies on the shifted axon block.
            self.core._ensure_block().buffers.schedule(
                np.zeros(active.size, dtype=np.int64),
                active + 64,
                np.full(active.size, 1 + self.delay),
                t,
            )
        raster = np.zeros((ticks, 256), dtype=bool)
        for t in range(ticks):
            raster[t] = self.core.step()
        return raster

    def direction_votes(self, raster: np.ndarray) -> tuple[int, int]:
        """(rightward, leftward) spike counts from a detector raster."""
        right = int(raster[:, : self.n_pixels - 1].sum())
        left = int(
            raster[:, self.LEFT_BANK : self.LEFT_BANK + self.n_pixels - 1].sum()
        )
        return right, left

    def detect(self, frames: np.ndarray) -> str:
        """Classify a stimulus as 'right', 'left', or 'none'."""
        right, left = self.direction_votes(self.present(frames))
        if right > left:
            return "right"
        if left > right:
            return "left"
        return "none"


def moving_bar(n_pixels: int, ticks: int, direction: str, speed: int = 1) -> np.ndarray:
    """A one-pixel bright bar sweeping across a 1-D retina (test stimulus)."""
    frames = np.zeros((ticks, n_pixels), dtype=bool)
    for t in range(ticks):
        pos = (t * speed) % n_pixels
        if direction == "left":
            pos = n_pixels - 1 - pos
        frames[t, pos] = True
    return frames
