"""Spiking attention mechanism (§I: "attention mechanisms").

Bottom-up saliency on one TrueNorth core: a 16×16 retina is tiled into a
4×4 grid of 4×4-pixel patches; every pixel axon feeds its patch's
saliency neuron, which integrates local spike energy and fires at a rate
proportional to patch activity.  Attention is the winning patch.

Centre-surround antagonism (optional) sharpens the map: the four centre
pixels of each patch are carried on inhibitory (type 1) axons wired to
the neighbouring patches' neurons, so a compact bright object suppresses
its surround while diffuse illumination suppresses itself.  The price of
the single-axon-type-per-axon constraint is that those centre pixels also
count −1 instead of +1 toward their own patch — a uniform 8-point
handicap per fully lit patch that cancels out in the comparison.
"""

from __future__ import annotations

import numpy as np

from repro.arch.builder import NetworkBuilder
from repro.arch.params import NeuronParameters
from repro.core.config import CompassConfig
from repro.core.simulator import Compass

RETINA = 16  #: retina is RETINA x RETINA pixels
PATCH = 4  #: patch edge length
GRID = RETINA // PATCH  #: patches per edge


def patch_of_pixel(pixel: int) -> int:
    """Flat pixel index -> flat patch index."""
    row, col = divmod(pixel, RETINA)
    return (row // PATCH) * GRID + (col // PATCH)


def _neighbour_patches(patch: int) -> list[int]:
    r, c = divmod(patch, GRID)
    out = []
    for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        rr, cc = r + dr, c + dc
        if 0 <= rr < GRID and 0 <= cc < GRID:
            out.append(rr * GRID + cc)
    return out


def _centre_pixels(patch: int) -> list[int]:
    r, c = divmod(patch, GRID)
    return [
        (r * PATCH + dr) * RETINA + (c * PATCH + dc)
        for dr in (1, 2)
        for dc in (1, 2)
    ]


class SaliencyAttention:
    """One-core saliency map with optional centre-surround inhibition."""

    def __init__(
        self,
        surround_inhibition: bool = True,
        threshold: int = 3,
        seed: int = 0,
    ) -> None:
        self.surround = surround_inhibition
        dense = np.zeros((256, 256), dtype=bool)
        types = np.zeros(256, dtype=np.uint8)
        for pixel in range(RETINA * RETINA):
            dense[pixel, patch_of_pixel(pixel)] = True
        if surround_inhibition:
            for patch in range(GRID * GRID):
                for pixel in _centre_pixels(patch):
                    types[pixel] = 1  # inhibitory axon
                    for nb in _neighbour_patches(patch):
                        dense[pixel, nb] = True
        builder = NetworkBuilder(seed=seed)
        builder.add_population(
            "saliency",
            1,
            neuron=NeuronParameters(
                weights=(1, -1, 0, 0), leak=-1, threshold=threshold, floor=0
            ),
            crossbar=dense,
            axon_types=types,
        )
        self.network, _, _ = builder.build()

    def saliency_map(self, image: np.ndarray, repeats: int = 4) -> np.ndarray:
        """Present a binary retina image; return (GRID, GRID) spike counts."""
        image = np.asarray(image, dtype=bool)
        if image.shape != (RETINA, RETINA):
            raise ValueError(f"image must be {RETINA}x{RETINA}")
        sim = Compass(self.network, CompassConfig(record_spikes=True))
        active = np.where(image.ravel())[0]
        for t in range(repeats):
            sim.inject_batch(np.zeros(active.shape, dtype=np.int64), active, t)
        sim.run(repeats + 2)
        _, _, neurons = sim.recorder.to_arrays()
        counts = np.bincount(neurons, minlength=GRID * GRID)[: GRID * GRID]
        return counts.reshape(GRID, GRID)

    def attend(self, image: np.ndarray, repeats: int = 4) -> tuple[int, int]:
        """(patch row, patch col) of the most salient patch."""
        sal = self.saliency_map(image, repeats)
        flat = int(np.argmax(sal))
        return flat // GRID, flat % GRID

    @staticmethod
    def patch_bounds(row: int, col: int) -> tuple[int, int, int, int]:
        """Pixel bounding box (y0, x0, y1, x1) of a patch."""
        return (row * PATCH, col * PATCH, (row + 1) * PATCH, (col + 1) * PATCH)


def scene_with_object(
    obj_row: int, obj_col: int, noise: float = 0.05, seed: int = 0
) -> np.ndarray:
    """A noisy retina image with one bright 4x4 object at a patch position."""
    rng = np.random.default_rng(seed)
    img = rng.random((RETINA, RETINA)) < noise
    y0, x0, y1, x1 = SaliencyAttention.patch_bounds(obj_row, obj_col)
    img[y0:y1, x0:x1] = True
    return img
