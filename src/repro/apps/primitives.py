"""Functional core primitives.

§IV: "we envisage first implementing libraries of functional primitives
that run on one or more interconnected TrueNorth cores.  We can then build
richer applications by instantiating and connecting regions of functional
primitives."  Each ``configure_*`` function turns one core of an existing
:class:`~repro.arch.network.CoreNetwork` into a primitive; callers wire
neuron outputs with :meth:`CoreNetwork.connect`.
"""

from __future__ import annotations

import numpy as np

from repro.arch.network import CoreNetwork
from repro.arch.params import NeuronParameters, ResetMode


def configure_relay(network: CoreNetwork, gid: int) -> None:
    """Identity core: a spike on axon *i* fires neuron *i* next tick.

    Diagonal crossbar, unit excitatory weight, threshold 1.
    """
    n = min(network.num_axons, network.num_neurons)
    network.set_crossbar(gid, np.eye(n, dtype=bool))
    network.set_axon_types(gid, np.zeros(network.num_axons, dtype=np.uint8))
    network.set_neurons(
        gid, NeuronParameters(weights=(1, 0, 0, 0), threshold=1, floor=0)
    )


def configure_splitter(network: CoreNetwork, gid: int, fanout: int) -> None:
    """Broadcast core: axon *i* drives neurons ``i*fanout .. (i+1)*fanout``.

    Splitting is how one neuron's single output reaches many targets: route
    it to a splitter axon and give each copy-neuron its own destination.
    """
    a, n = network.num_axons, network.num_neurons
    if fanout <= 0 or fanout > n:
        raise ValueError(f"fanout {fanout} out of range")
    dense = np.zeros((a, n), dtype=bool)
    for i in range(min(a, n // fanout)):
        dense[i, i * fanout : (i + 1) * fanout] = True
    network.set_crossbar(gid, dense)
    network.set_axon_types(gid, np.zeros(a, dtype=np.uint8))
    network.set_neurons(
        gid, NeuronParameters(weights=(1, 0, 0, 0), threshold=1, floor=0)
    )


def configure_majority(
    network: CoreNetwork, gid: int, group: int, quorum: int
) -> None:
    """K-of-N voting core: neuron *j* fires when ≥ ``quorum`` of its
    ``group`` input axons spike in the same tick.

    Axons are grouped contiguously: axons ``j*group .. (j+1)*group`` feed
    neuron *j*.
    """
    a, n = network.num_axons, network.num_neurons
    if not 1 <= quorum <= group:
        raise ValueError("need 1 <= quorum <= group")
    dense = np.zeros((a, n), dtype=bool)
    for j in range(min(n, a // group)):
        dense[j * group : (j + 1) * group, j] = True
    network.set_crossbar(gid, dense)
    network.set_axon_types(gid, np.zeros(a, dtype=np.uint8))
    network.set_neurons(
        gid,
        NeuronParameters(weights=(1, 0, 0, 0), threshold=quorum, floor=0),
    )


def configure_delay_line(
    network: CoreNetwork, gid: int, stages: int, lanes: int
) -> None:
    """Multi-stage delay line: a spike on lane *l* re-emerges ``stages``
    ticks later on neuron ``(stages-1)*lanes + l``.

    Stage *s* occupies axons/neurons ``s*lanes .. (s+1)*lanes``; each
    stage's neurons must be routed (by the caller, via
    :meth:`CoreNetwork.connect`) to the next stage's axons with delay 1,
    or left to the intra-core diagonal relay here when all stages live on
    one core: axon ``s*lanes + l`` drives neuron ``s*lanes + l``.
    """
    a, n = network.num_axons, network.num_neurons
    if stages * lanes > min(a, n):
        raise ValueError("delay line does not fit one core")
    dense = np.zeros((a, n), dtype=bool)
    idx = np.arange(stages * lanes)
    dense[idx, idx] = True
    network.set_crossbar(gid, dense)
    network.set_axon_types(gid, np.zeros(a, dtype=np.uint8))
    network.set_neurons(
        gid, NeuronParameters(weights=(1, 0, 0, 0), threshold=1, floor=0)
    )
    # Chain the stages internally: stage s neuron l -> stage s+1 axon l.
    for s in range(stages - 1):
        for lane in range(lanes):
            network.connect(
                gid,
                s * lanes + lane,
                _stage_target(gid, (s + 1) * lanes + lane),
            )


def _stage_target(gid: int, axon: int):
    from repro.arch.network import NeuronTarget

    return NeuronTarget(gid, axon, delay=1)


def configure_toggle(network: CoreNetwork, gid: int, channels: int) -> None:
    """Set/reset latch per channel.

    Axon ``2c`` (set, excitatory +2) pushes channel *c*'s neuron to a
    positive plateau where a +1/tick self-drive keeps it firing every
    tick; axon ``2c+1`` (reset, inhibitory −8) knocks it back below.
    The "self-drive" is the neuron's own output routed back to a third
    axon block (``128 + c``) by this function.
    """
    a, n = network.num_axons, network.num_neurons
    if 2 * channels > 128 or channels > n:
        raise ValueError("too many toggle channels")
    dense = np.zeros((a, n), dtype=bool)
    types = np.zeros(a, dtype=np.uint8)
    for c in range(channels):
        dense[2 * c, c] = True  # set
        dense[2 * c + 1, c] = True  # reset
        types[2 * c + 1] = 1
        dense[128 + c, c] = True  # self-sustain loop
    network.set_crossbar(gid, dense)
    network.set_axon_types(gid, types)
    network.set_neurons(
        gid,
        NeuronParameters(
            weights=(2, -8, 0, 0),
            threshold=2,
            reset_mode=ResetMode.LINEAR,
            floor=-2,
        ),
    )
    for c in range(channels):
        network.connect(gid, c, _stage_target(gid, 128 + c))


def configure_counter(
    network: CoreNetwork, gid: int, count: int, channels: int = 1
) -> None:
    """Divide-by-N: channel *c*'s neuron fires once per ``count`` input
    spikes on axon *c* (LINEAR reset preserves the remainder)."""
    a, n = network.num_axons, network.num_neurons
    if channels > min(a, n):
        raise ValueError("too many counter channels")
    if count < 1:
        raise ValueError("count must be >= 1")
    dense = np.zeros((a, n), dtype=bool)
    idx = np.arange(channels)
    dense[idx, idx] = True
    network.set_crossbar(gid, dense)
    network.set_axon_types(gid, np.zeros(a, dtype=np.uint8))
    network.set_neurons(
        gid,
        NeuronParameters(
            weights=(1, 0, 0, 0),
            threshold=count,
            reset_mode=ResetMode.LINEAR,
            floor=0,
        ),
    )


def configure_gate(network: CoreNetwork, gid: int, channels: int) -> None:
    """Coincidence gate: channel *c* fires only when its data axon *c*
    AND its control axon ``64 + c`` spike in the same tick."""
    a, n = network.num_axons, network.num_neurons
    if channels > 64 or channels > n:
        raise ValueError("too many gate channels")
    dense = np.zeros((a, n), dtype=bool)
    for c in range(channels):
        dense[c, c] = True  # data
        dense[64 + c, c] = True  # control
    network.set_crossbar(gid, dense)
    network.set_axon_types(gid, np.zeros(a, dtype=np.uint8))
    # The leak cancels exactly one input per tick, so a lone input (even
    # sustained) nets zero while a same-tick pair nets +2 = threshold.
    network.set_neurons(
        gid,
        NeuronParameters(weights=(2, 0, 0, 0), leak=-2, threshold=2, floor=0),
    )


def configure_wta(
    network: CoreNetwork, gid: int, n_channels: int, threshold: int = 2
) -> None:
    """Winner-take-all core over ``n_channels`` channels.

    Axon *i* excites neuron *i* (type 0, +2) and inhibits every other
    channel (type 1, −1 via a broadcast inhibition axon block): the
    strongest-driven channel crosses threshold first and suppresses the
    rest.  Axons ``n_channels .. 2*n_channels`` carry the inhibitory copies
    (callers route each source to both its excitatory axon and the shared
    inhibition row).
    """
    a, n = network.num_axons, network.num_neurons
    if 2 * n_channels > min(a, n):
        raise ValueError("too many channels for one core")
    dense = np.zeros((a, n), dtype=bool)
    types = np.zeros(a, dtype=np.uint8)
    for i in range(n_channels):
        dense[i, i] = True  # excitation
        inhib_axon = n_channels + i
        types[inhib_axon] = 1
        row = np.zeros(n, dtype=bool)
        row[:n_channels] = True
        row[i] = False
        dense[inhib_axon] = row  # inhibit all rivals
    network.set_crossbar(gid, dense)
    network.set_axon_types(gid, types)
    network.set_neurons(
        gid,
        NeuronParameters(
            weights=(2, -1, 0, 0), threshold=threshold, floor=-4
        ),
    )
