"""Application library (§I: "we have used Compass to demonstrate numerous
applications of the TrueNorth architecture").

Functional primitives (:mod:`repro.apps.primitives`) configure single cores
as reusable building blocks; :mod:`repro.apps.encoders` /
:mod:`repro.apps.decoders` translate between data and spikes;
:mod:`repro.apps.classify` implements spiking template classification
(character recognition); :mod:`repro.apps.opticflow` implements
Reichardt-style direction-selective motion detection using axonal delays.
"""

from repro.apps.quicknet import build_quickstart_network
from repro.apps.encoders import rate_encode, image_to_spikes, poisson_schedule
from repro.apps.decoders import spike_counts, rates_from_counts, argmax_decode
from repro.apps.primitives import (
    configure_relay,
    configure_splitter,
    configure_majority,
    configure_wta,
)
from repro.apps.classify import TemplateClassifier, DIGIT_GLYPHS
from repro.apps.opticflow import MotionDetector1D

__all__ = [
    "build_quickstart_network",
    "rate_encode",
    "image_to_spikes",
    "poisson_schedule",
    "spike_counts",
    "rates_from_counts",
    "argmax_decode",
    "configure_relay",
    "configure_splitter",
    "configure_majority",
    "configure_wta",
    "TemplateClassifier",
    "DIGIT_GLYPHS",
    "MotionDetector1D",
]
