"""The quickstart network: small, self-driving, multi-core.

Four cores in a ring.  Every core has a random crossbar, balanced
excitatory/inhibitory axon types, and neurons with a stochastic positive
leak for background drive; every neuron targets an axon on the next core
in the ring, so activity circulates — a miniature of the macaque model's
white-matter structure that runs in milliseconds.
"""

from __future__ import annotations

import numpy as np

from repro.arch.crossbar import Crossbar
from repro.arch.network import CoreNetwork
from repro.arch.params import NeuronParameters


def build_quickstart_network(
    n_cores: int = 4, seed: int = 42, density: float = 0.1
) -> CoreNetwork:
    """Build the ring network used by ``examples/quickstart.py``."""
    if n_cores < 2:
        raise ValueError("the quickstart ring needs at least 2 cores")
    net = CoreNetwork(n_cores, seed=seed)
    rng = np.random.default_rng(seed)
    # 45% excitatory / 55% inhibitory axons keeps the recurrence subcritical
    # while the stochastic leak (8/256 per tick against threshold 2, ~16 Hz)
    # ignites activity within the first few ticks of a demo run.
    n_excitatory = int(net.num_axons * 0.45)
    types = np.ones(net.num_axons, dtype=np.uint8)
    types[:n_excitatory] = 0
    for gid in range(n_cores):
        net.set_crossbar(gid, Crossbar.random(rng, density))
        net.set_axon_types(gid, types)
        net.set_neurons(
            gid,
            NeuronParameters(
                weights=(1, -1, 0, 0),
                leak=8,
                stochastic_leak=True,
                threshold=2,
                floor=-16,
            ),
        )
        # Neuron j on core gid targets axon j on the next core in the ring.
        nxt = (gid + 1) % n_cores
        neurons = np.arange(net.num_neurons)
        net.connect_many(
            np.full(net.num_neurons, gid),
            neurons,
            np.full(net.num_neurons, nxt),
            neurons % net.num_axons,
            delay=1 + (gid % 3),
        )
    return net
