"""Multi-modal sensor integration (§I: "multi-modal image-audio
classification" and "sensor integration").

Two single-modality spiking classifiers — a visual template matcher over
8×8 glyphs and an "auditory" matcher over 64-bin binary spectral
signatures — vote into a shared decision: per class, the evidence spike
counts from both modalities are summed (with configurable weights) and
the argmax wins.  Because each modality is an independent TrueNorth
core bank, a corrupted modality degrades gracefully instead of breaking
the decision.
"""

from __future__ import annotations

import numpy as np

from repro.apps.classify import DIGIT_GLYPHS, TemplateClassifier, glyph_to_array
from repro.arch.network import CoreNetwork
from repro.arch.params import NeuronParameters
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.apps.decoders import counts_by_gid
from repro.apps.encoders import image_to_spikes


def default_audio_signatures(labels: list[int], seed: int = 0) -> dict[int, np.ndarray]:
    """Synthetic per-class 64-bin binary spectral signatures.

    Stands in for the paper's audio feature streams: deterministic,
    well-separated binary patterns (each class activates a distinct set of
    ~20 bins).
    """
    rng = np.random.default_rng(seed)
    sigs: dict[int, np.ndarray] = {}
    for label in labels:
        sig = np.zeros(64, dtype=bool)
        bins = rng.choice(64, size=20, replace=False)
        sig[bins] = True
        sigs[label] = sig
    return sigs


class AudioClassifier:
    """One core per class matching a 64-bin binary signature."""

    def __init__(self, signatures: dict[int, np.ndarray], seed: int = 0) -> None:
        if not signatures:
            raise ValueError("need at least one signature")
        self.labels = sorted(signatures)
        self.signatures = {k: np.asarray(v, dtype=bool) for k, v in signatures.items()}
        width = {s.size for s in self.signatures.values()}
        if len(width) != 1:
            raise ValueError("signatures must share one length")
        self.n_bins = width.pop()
        if self.n_bins > 256:
            raise ValueError("signatures must fit the 256-axon crossbar")
        self.network = self._build(seed)

    def _build(self, seed: int) -> CoreNetwork:
        net = CoreNetwork(len(self.labels), seed=seed)
        for gid, label in enumerate(self.labels):
            sig = self.signatures[label]
            dense = np.zeros((net.num_axons, net.num_neurons), dtype=bool)
            types = np.zeros(net.num_axons, dtype=np.uint8)
            dense[: self.n_bins, 0] = True
            types[: self.n_bins] = np.where(sig, 0, 1).astype(np.uint8)
            net.set_crossbar(gid, dense)
            net.set_axon_types(gid, types)
            threshold = max(1, int(sig.sum() * 0.7))
            net.set_neurons(
                gid, NeuronParameters(weights=(1, -1, 0, 0), threshold=threshold, floor=0)
            )
        return net

    def evidence(self, spectrum: np.ndarray, repeats: int = 3) -> np.ndarray:
        """Per-class spike counts for one presented spectrum."""
        spectrum = np.asarray(spectrum, dtype=bool)
        if spectrum.size != self.n_bins:
            raise ValueError(f"spectrum must have {self.n_bins} bins")
        sim = Compass(self.network, CompassConfig(record_spikes=True))
        active = np.where(spectrum)[0]
        for t in range(repeats):
            for gid in range(len(self.labels)):
                sim.inject_batch(np.full(active.shape, gid), active, t)
        sim.run(repeats + 2)
        return counts_by_gid(sim.recorder, len(self.labels)).astype(float)


class MultiModalClassifier:
    """Image + audio fusion over per-class evidence counts."""

    def __init__(
        self,
        glyphs: dict[int, np.ndarray] | None = None,
        signatures: dict[int, np.ndarray] | None = None,
        visual_weight: float = 1.0,
        audio_weight: float = 1.0,
        seed: int = 0,
    ) -> None:
        glyphs = glyphs if glyphs is not None else DIGIT_GLYPHS
        self.labels = sorted(glyphs)
        signatures = (
            signatures
            if signatures is not None
            else default_audio_signatures(self.labels, seed)
        )
        if sorted(signatures) != self.labels:
            raise ValueError("glyphs and signatures must share labels")
        self.visual = TemplateClassifier(glyphs, seed=seed)
        self.audio = AudioClassifier(signatures, seed=seed + 1)
        self.visual_weight = visual_weight
        self.audio_weight = audio_weight

    def _visual_evidence(self, image: np.ndarray, repeats: int = 3) -> np.ndarray:
        sim = Compass(self.visual.network, CompassConfig(record_spikes=True))
        schedule = image_to_spikes(np.asarray(image), repeats=repeats)
        for tick, axons in schedule.items():
            for gid in range(len(self.labels)):
                sim.inject_batch(np.full(axons.shape, gid), axons, tick)
        sim.run(repeats + 2)
        return counts_by_gid(sim.recorder, len(self.labels)).astype(float)

    def classify(
        self,
        image: np.ndarray | None = None,
        spectrum: np.ndarray | None = None,
        repeats: int = 3,
    ) -> int:
        """Fuse whichever modalities are present; at least one required."""
        if image is None and spectrum is None:
            raise ValueError("need at least one modality")
        score = np.zeros(len(self.labels))
        if image is not None:
            score += self.visual_weight * self._visual_evidence(image, repeats)
        if spectrum is not None:
            score += self.audio_weight * self.audio.evidence(spectrum, repeats)
        return self.labels[int(np.argmax(score))]

    def sample_for(self, label: int) -> tuple[np.ndarray, np.ndarray]:
        """Clean (image, spectrum) pair for a label (testing/demos)."""
        return (
            glyph_to_array(DIGIT_GLYPHS[label]),
            self.audio.signatures[label].copy(),
        )
