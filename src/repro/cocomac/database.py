"""Synthetic CoCoMac-like connectivity database.

The real CoCoMac network (as processed by Modha & Singh [9]) has 383
hierarchically organised regions spanning cortex, thalamus, and basal
ganglia, with 6,602 directed white-matter edges; reducing child regions
into parents where both report connections yields 102 regions, 77 of which
report connections (§V-B).  The generator here reproduces those counts
deterministically from a seed:

* 102 top-level regions — 62 cortical, 30 thalamic, 10 basal ganglia —
  of which 77 report connections (55 cortical, 17 thalamic, 5 basal
  ganglia);
* 281 descendant regions (two hierarchy levels) distributed over the
  reporting top-level regions, all reporting connections;
* exactly 6,602 directed edges among reporting regions, drawn from a
  preferential-attachment-flavoured distribution so degree spread looks
  biological rather than uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

#: Published statistics reproduced by the generator.
FULL_REGIONS = 383
FULL_EDGES = 6602
REDUCED_REGIONS = 102
REDUCED_CONNECTED = 77

_TOP_LEVEL = {
    "cortical": (62, 55),  # (total, reporting)
    "thalamic": (30, 17),
    "basal_ganglia": (10, 5),
}


@dataclass(frozen=True)
class Region:
    """One database region."""

    index: int
    name: str
    region_class: str  #: cortical | thalamic | basal_ganglia
    parent: int  #: parent region index, or -1 for top level
    reports: bool  #: whether tracing studies report connections for it


@dataclass
class ConnectivityDatabase:
    """Regions plus directed white-matter edges between them."""

    regions: list[Region]
    edges: set[tuple[int, int]] = field(default_factory=set)

    @property
    def n_regions(self) -> int:
        return len(self.regions)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def connected_regions(self) -> list[Region]:
        """Regions that have at least one incident edge."""
        touched = {i for e in self.edges for i in e}
        return [r for r in self.regions if r.index in touched]

    def children_of(self, index: int) -> list[Region]:
        return [r for r in self.regions if r.parent == index]

    def top_level(self) -> list[Region]:
        return [r for r in self.regions if r.parent == -1]

    def graph(self) -> nx.DiGraph:
        """networkx view (used by analysis and tests)."""
        g = nx.DiGraph()
        for r in self.regions:
            g.add_node(
                r.index,
                name=r.name,
                region_class=r.region_class,
                parent=r.parent,
                reports=r.reports,
            )
        g.add_edges_from(self.edges)
        return g

    def adjacency(self, order: list[int] | None = None) -> np.ndarray:
        """Binary adjacency matrix over ``order`` (defaults to all regions)."""
        if order is None:
            order = [r.index for r in self.regions]
        pos = {idx: i for i, idx in enumerate(order)}
        m = np.zeros((len(order), len(order)), dtype=np.int8)
        for a, b in self.edges:
            if a in pos and b in pos:
                m[pos[a], pos[b]] = 1
        return m


def synthetic_cocomac(seed: int = 0) -> ConnectivityDatabase:
    """Generate the synthetic full-resolution database (383 regions, 6602 edges)."""
    rng = np.random.default_rng(seed)
    regions: list[Region] = []
    reporting_top: list[int] = []

    # 1. Top-level regions per class.
    class_prefix = {"cortical": "CX", "thalamic": "TH", "basal_ganglia": "BG"}
    for cls, (total, reporting) in _TOP_LEVEL.items():
        for i in range(total):
            idx = len(regions)
            reports = i < reporting
            regions.append(
                Region(
                    index=idx,
                    name=f"{class_prefix[cls]}{i:02d}",
                    region_class=cls,
                    parent=-1,
                    reports=reports,
                )
            )
            if reports:
                reporting_top.append(idx)

    # 2. Descendants: FULL_REGIONS - 102 children over the reporting parents,
    #    two hierarchy levels deep (some children of children).
    n_descendants = FULL_REGIONS - len(regions)
    n_level1 = int(n_descendants * 0.7)
    level1: list[int] = []
    for i in range(n_level1):
        parent = reporting_top[i % len(reporting_top)]
        idx = len(regions)
        regions.append(
            Region(
                index=idx,
                name=f"{regions[parent].name}.{i // len(reporting_top)}",
                region_class=regions[parent].region_class,
                parent=parent,
                reports=True,
            )
        )
        level1.append(idx)
    for i in range(n_descendants - n_level1):
        parent = level1[i % len(level1)]
        idx = len(regions)
        regions.append(
            Region(
                index=idx,
                name=f"{regions[parent].name}.{i // len(level1)}",
                region_class=regions[parent].region_class,
                parent=parent,
                reports=True,
            )
        )

    # 3. Edges among reporting regions: preferential-attachment flavour.
    #    A ring over the reporting top-level regions is seeded first so that
    #    every reporting region is guaranteed connected after reduction.
    reporting = np.array([r.index for r in regions if r.reports], dtype=np.int64)
    weights = rng.pareto(1.5, size=reporting.size) + 1.0
    weights /= weights.sum()
    edges: set[tuple[int, int]] = set()
    for i, idx in enumerate(reporting_top):
        edges.add((idx, reporting_top[(i + 1) % len(reporting_top)]))
    while len(edges) < FULL_EDGES:
        deficit = FULL_EDGES - len(edges)
        src = rng.choice(reporting, size=deficit * 2, p=weights)
        dst = rng.choice(reporting, size=deficit * 2, p=weights)
        for a, b in zip(src, dst):
            if a != b:
                edges.add((int(a), int(b)))
                if len(edges) == FULL_EDGES:
                    break

    db = ConnectivityDatabase(regions=regions, edges=edges)
    assert db.n_regions == FULL_REGIONS
    assert db.n_edges == FULL_EDGES
    return db
