"""The CoCoMac macaque-brain network model (§V).

The paper instantiates its test network from the CoCoMac database of
macaque white-matter tracing studies [27, 28], reduced from 383
hierarchically organised regions (6,602 directed edges) to 102 regions of
which 77 report connections, with relative region sizes from the Paxinos
atlas [29].  Neither data source ships with this repository, so
:mod:`repro.cocomac.database` provides a deterministic synthetic generator
reproducing the *published statistics* (see DESIGN.md §2 for the
substitution argument), :mod:`repro.cocomac.reduction` implements the
child-into-parent OR-merge, :mod:`repro.cocomac.atlas` the volume model
with median imputation, and :mod:`repro.cocomac.model` assembles the final
CoreObject with the 60/40 / 80/20 white-gray split and IPFP balancing.
"""

from repro.cocomac.database import Region, ConnectivityDatabase, synthetic_cocomac
from repro.cocomac.reduction import reduce_database
from repro.cocomac.atlas import synthetic_atlas, AtlasVolumes
from repro.cocomac.model import (
    MacaqueModel,
    build_macaque_coreobject,
    build_macaque_model,
)

__all__ = [
    "Region",
    "ConnectivityDatabase",
    "synthetic_cocomac",
    "reduce_database",
    "synthetic_atlas",
    "AtlasVolumes",
    "MacaqueModel",
    "build_macaque_coreobject",
    "build_macaque_model",
]
