"""Synthetic Paxinos-like region volumes (§V-A).

"We derived volumetric information for each region from the Paxinos brain
atlas, which in turn was used to set relative neuron counts for each
region.  Volume information was not available for 5 cortical and 8
thalamic regions and so was approximated using the median size of the
other cortical or thalamic regions, respectively."

The synthetic atlas draws log-normal relative volumes (brain-region sizes
span about two orders of magnitude), deterministically marks 5 cortical
and 8 thalamic regions as missing, and imputes them with the class median
— exactly the paper's procedure, on synthetic values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cocomac.database import Region

#: Regions lacking Paxinos volumes in the paper, per class.
MISSING_BY_CLASS = {"cortical": 5, "thalamic": 8, "basal_ganglia": 0}


@dataclass
class AtlasVolumes:
    """Relative volumes per region, plus which were imputed."""

    volumes: dict[str, float]
    imputed: set[str]

    def volume_array(self, names: list[str]) -> np.ndarray:
        return np.array([self.volumes[n] for n in names], dtype=float)

    @property
    def total(self) -> float:
        return float(sum(self.volumes.values()))


def synthetic_atlas(
    regions: list[Region], seed: int = 0, sigma: float = 0.9
) -> AtlasVolumes:
    """Assign relative volumes to ``regions`` with median imputation.

    Deterministic in ``seed``; the *last* ``MISSING_BY_CLASS[cls]`` regions
    of each class (by index order) play the role of the atlas's missing
    entries.
    """
    rng = np.random.default_rng(seed ^ 0xA71A5)
    by_class: dict[str, list[Region]] = {}
    for r in regions:
        by_class.setdefault(r.region_class, []).append(r)

    volumes: dict[str, float] = {}
    imputed: set[str] = set()
    for cls, members in by_class.items():
        members = sorted(members, key=lambda r: r.index)
        n_missing = min(MISSING_BY_CLASS.get(cls, 0), max(len(members) - 1, 0))
        known = members[: len(members) - n_missing]
        missing = members[len(members) - n_missing :]
        draws = rng.lognormal(mean=0.0, sigma=sigma, size=len(known))
        for r, v in zip(known, draws):
            volumes[r.name] = float(v)
        median = float(np.median(draws)) if len(draws) else 1.0
        for r in missing:
            volumes[r.name] = median
            imputed.add(r.name)
    return AtlasVolumes(volumes=volumes, imputed=imputed)


def cores_per_region(
    atlas: AtlasVolumes, names: list[str], total_cores: int
) -> np.ndarray:
    """Apportion ``total_cores`` to regions proportionally to volume.

    Largest-remainder apportionment with a floor of one core per region
    (every region must be simulable).
    """
    if total_cores < len(names):
        raise ValueError(
            f"need at least one core per region: {total_cores} < {len(names)}"
        )
    v = atlas.volume_array(names)
    raw = v / v.sum() * total_cores
    out = np.maximum(1, np.floor(raw).astype(np.int64))
    # Largest remainder, respecting the floor when trimming overshoot.
    while out.sum() < total_cores:
        out[np.argmax(raw - out)] += 1
    while out.sum() > total_cores:
        candidates = np.where(out > 1)[0]
        out[candidates[np.argmin((raw - out)[candidates])]] -= 1
    return out
