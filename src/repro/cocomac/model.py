"""Assemble the macaque test network (§V) into a CoreObject.

Pipeline (§V-B, §V-C):

1. generate + reduce the connectivity database (383 → 102 regions, 77
   reporting connections);
2. assign relative volumes from the synthetic atlas (median imputation)
   and apportion TrueNorth cores to regions proportionally to volume;
3. build the region-level stochastic connection matrix: gray matter on the
   diagonal (40% of a cortical region's connections, 20% of a sub-cortical
   region's), white matter on the binary CoCoMac edges proportional to
   target-region volume;
4. balance the matrix with IPFP so row and column sums equal each region's
   connection capacity (cores × 256), guaranteeing realizability, then
   round to integer connection counts preserving the row sums;
5. emit a :class:`~repro.compiler.coreobject.CoreObject` with one
   connection spec per non-zero entry (diffuse targeting happens inside
   the PCC's round-robin allocators, §V-B/§V-C).

Neuron prototypes are self-driving: a stochastic positive leak provides
background drive so the network sustains activity without external input,
with balanced excitatory/inhibitory axon types bounding the rate.  The
default parameters land the network near the paper's ~8 Hz mean rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.params import NUM_NEURONS, NeuronParameters
from repro.cocomac.atlas import AtlasVolumes, cores_per_region, synthetic_atlas
from repro.cocomac.database import ConnectivityDatabase, synthetic_cocomac
from repro.cocomac.reduction import reduce_database
from repro.compiler.coreobject import ConnectionSpec, CoreObject, RegionSpec
from repro.compiler.ipfp import balance_matrix, round_preserving_sums
from repro.compiler.pcc import CompiledModel, ParallelCompassCompiler

#: White-matter (long-range) fraction of a region's connections (§V-C).
WHITE_FRACTION = {"cortical": 0.6, "thalamic": 0.8, "basal_ganglia": 0.8}

#: Default crossbar density for macaque-model cores.
CROSSBAR_DENSITY = 0.125


def default_neuron_prototype(region_class: str) -> NeuronParameters:
    """Self-driving balanced neuron for the macaque network.

    Axon type 0 is excitatory (+1), type 1 inhibitory (−1); the stochastic
    positive leak supplies background drive (``32/256`` per tick against
    the threshold) and the deep floor keeps the slightly-inhibition-
    dominated recurrence subcritical, so the network settles near the
    paper's 8.1 Hz mean rate (measured 8.0 Hz steady-state at the
    128-core calibration point).
    """
    threshold = 19 if region_class == "cortical" else 21
    return NeuronParameters(
        weights=(1, -1, 0, 0),
        stochastic_weights=(False, False, False, False),
        leak=32,
        stochastic_leak=True,
        threshold=threshold,
        reset_value=0,
        floor=-48,
    )


@dataclass
class MacaqueModel:
    """Everything §V produces: the CoreObject plus its provenance."""

    coreobject: CoreObject
    database: ConnectivityDatabase  #: reduced 102-region database
    region_names: list[str]  #: the 77 connected regions, in matrix order
    region_classes: list[str]
    volumes: AtlasVolumes
    cores: np.ndarray  #: cores apportioned per region
    binary_matrix: np.ndarray  #: (R, R) CoCoMac adjacency
    balanced_matrix: np.ndarray  #: IPFP-balanced float matrix
    connection_counts: np.ndarray  #: integer neuron→axon counts
    compiled: CompiledModel | None = None

    @property
    def n_regions(self) -> int:
        return len(self.region_names)

    @property
    def total_cores(self) -> int:
        return int(self.cores.sum())

    @property
    def white_matter_fraction(self) -> float:
        """Fraction of wired connections that cross regions."""
        total = self.connection_counts.sum()
        gray = np.trace(self.connection_counts)
        return float((total - gray) / total) if total else 0.0

    def gray_fraction_of(self, i: int) -> float:
        row = self.connection_counts[i]
        total = row.sum()
        return float(row[i] / total) if total else 0.0


def build_macaque_coreobject(
    total_cores: int,
    seed: int = 0,
    crossbar_density: float = CROSSBAR_DENSITY,
    capacity_utilisation: float = 1.0,
) -> MacaqueModel:
    """Build the macaque CoreObject without compiling it.

    ``capacity_utilisation`` scales the per-region connection budget below
    the hard capacity (cores × 256); the builder always reserves an
    additional ``n_regions`` units so integer rounding can never push a
    column past its axon capacity.
    """
    full = synthetic_cocomac(seed)
    reduced = reduce_database(full)
    connected = sorted(reduced.connected_regions(), key=lambda r: r.index)
    names = [r.name for r in connected]
    classes = [r.region_class for r in connected]
    atlas = synthetic_atlas(connected, seed)
    cores = cores_per_region(atlas, names, total_cores)
    volumes = atlas.volume_array(names)
    n = len(connected)

    binary = reduced.adjacency(order=[r.index for r in connected])
    np.fill_diagonal(binary, 0)

    # Stochastic matrix seed: gray on the diagonal, white proportional to
    # target volume over the region's CoCoMac out-neighbours.
    m = np.zeros((n, n), dtype=float)
    for i in range(n):
        white = WHITE_FRACTION[classes[i]]
        gray = 1.0 - white
        m[i, i] = gray * volumes[i]
        out = np.where(binary[i] > 0)[0]
        if out.size:
            share = volumes[out] / volumes[out].sum()
            m[i, out] = white * volumes[i] * share
        else:  # no out-edges: everything stays local
            m[i, i] = volumes[i]

    # Capacity targets with rounding margin (see round_preserving_sums).
    capacity = cores.astype(float) * NUM_NEURONS * capacity_utilisation - n
    capacity = np.maximum(capacity, 1.0)
    balanced = balance_matrix(m, capacity, capacity, tol=1e-9)
    counts = round_preserving_sums(balanced.matrix, capacity)
    # Drop sub-single-connection entries produced by rounding of tiny flows.
    counts[counts < 0] = 0

    regions = [
        RegionSpec(
            name=names[i],
            n_cores=int(cores[i]),
            neuron=default_neuron_prototype(classes[i]),
            crossbar_density=crossbar_density,
            axon_type_fractions=(0.45, 0.55, 0.0, 0.0),
            region_class=classes[i],
        )
        for i in range(n)
    ]
    connections = []
    for i in range(n):
        for j in np.where(counts[i] > 0)[0]:
            connections.append(
                ConnectionSpec(
                    src=names[i],
                    dst=names[int(j)],
                    count=int(counts[i, j]),
                    delay=1 + (i * 31 + int(j) * 17) % 3,
                )
            )
    obj = CoreObject(
        name=f"cocomac-macaque-{total_cores}cores",
        regions=regions,
        connections=connections,
        seed=seed,
    )
    return MacaqueModel(
        coreobject=obj,
        database=reduced,
        region_names=names,
        region_classes=classes,
        volumes=atlas,
        cores=cores,
        binary_matrix=binary,
        balanced_matrix=balanced.matrix,
        connection_counts=counts,
    )


def build_macaque_model(
    total_cores: int,
    seed: int = 0,
    crossbar_density: float = CROSSBAR_DENSITY,
) -> MacaqueModel:
    """Build *and compile* the macaque model (functional-scale sizes)."""
    model = build_macaque_coreobject(
        total_cores, seed=seed, crossbar_density=crossbar_density
    )
    compiler = ParallelCompassCompiler()
    model.compiled = compiler.compile(model.coreobject)
    return model
