"""Export utilities for the connectivity database and macaque models.

Downstream analyses (graph statistics, visualisation, cross-checks
against the real CoCoMac) need standard formats: GraphML via networkx,
adjacency CSV, and a region table.  All exporters are deterministic and
round-trip-tested.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

import networkx as nx

from repro.cocomac.database import ConnectivityDatabase
from repro.cocomac.model import MacaqueModel


def to_graphml(db: ConnectivityDatabase, path: str | Path) -> Path:  # repro: obs-flush
    """Write the region graph as GraphML (nodes carry all metadata)."""
    path = Path(path)
    nx.write_graphml(db.graph(), path)
    return path


def from_graphml(path: str | Path) -> nx.DiGraph:
    """Read back a GraphML export (as a networkx graph)."""
    return nx.read_graphml(Path(path), node_type=int)


def adjacency_csv(db: ConnectivityDatabase) -> str:
    """Dense 0/1 adjacency as CSV, with region names as header and index."""
    order = [r.index for r in db.regions]
    names = [r.name for r in db.regions]
    matrix = db.adjacency(order)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["region"] + names)
    for name, row in zip(names, matrix):
        writer.writerow([name] + [int(v) for v in row])
    return buf.getvalue()


def region_table_csv(model: MacaqueModel) -> str:
    """Per-region table: class, volume, cores, in/out degree, gray share."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["region", "class", "volume", "imputed", "cores",
         "out_connections", "in_connections", "gray_fraction"]
    )
    counts = model.connection_counts
    for i, name in enumerate(model.region_names):
        writer.writerow(
            [
                name,
                model.region_classes[i],
                round(model.volumes.volumes[name], 6),
                int(name in model.volumes.imputed),
                int(model.cores[i]),
                int(counts[i].sum()),
                int(counts[:, i].sum()),
                round(model.gray_fraction_of(i), 6),
            ]
        )
    return buf.getvalue()


def export_model(  # repro: obs-flush
    model: MacaqueModel, directory: str | Path
) -> list[Path]:
    """Write every export for one macaque model; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    paths.append(to_graphml(model.database, directory / "reduced_graph.graphml"))
    (directory / "adjacency.csv").write_text(adjacency_csv(model.database))
    paths.append(directory / "adjacency.csv")
    (directory / "regions.csv").write_text(region_table_csv(model))
    paths.append(directory / "regions.csv")
    paths.append(
        Path(model.coreobject.to_json(directory / "coreobject.json") or "")
        and directory / "coreobject.json"
    )
    return paths
