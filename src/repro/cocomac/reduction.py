"""Hierarchy reduction: merge child regions into parents (§V-B).

"For simplicity, we reduced the network by merging a child subregion into a
parent region where both child and parent regions report connections.  We
do this by ORing the connections of the child region with that of the
parent region."  The merge runs to a fixpoint so arbitrarily deep
hierarchies collapse; applied to the synthetic full database it yields the
paper's 102-region network with 77 regions reporting connections.
"""

from __future__ import annotations

from repro.cocomac.database import ConnectivityDatabase, Region


def reduce_database(db: ConnectivityDatabase) -> ConnectivityDatabase:
    """Collapse reporting children into reporting ancestors.

    Returns a new database containing only regions that survived the merge
    (indices re-numbered densely, original names kept).  Edges are ORed:
    a merged child's edge (c → x) becomes (parent → x'), where x' is x's
    own surviving representative; duplicate edges and self-loops collapse.
    """
    # Representative map: each region points to the region absorbing it.
    absorb: dict[int, int] = {r.index: r.index for r in db.regions}
    by_index = {r.index: r for r in db.regions}

    changed = True
    while changed:
        changed = False
        for r in db.regions:
            if r.parent == -1 or absorb[r.index] != r.index:
                continue
            parent = by_index[r.parent]
            # Walk up to the parent's current representative.
            p_rep = _find(absorb, parent.index)
            if r.reports and by_index[p_rep].reports:
                absorb[r.index] = p_rep
                changed = True

    # Surviving regions, densely re-indexed in original order.
    survivors = [r for r in db.regions if _find(absorb, r.index) == r.index]
    new_index = {r.index: i for i, r in enumerate(survivors)}
    regions = [
        Region(
            index=new_index[r.index],
            name=r.name,
            region_class=r.region_class,
            parent=(
                new_index[_find(absorb, r.parent)]
                if r.parent != -1 and _find(absorb, r.parent) in new_index
                else -1
            ),
            reports=r.reports,
        )
        for r in survivors
    ]

    edges = set()
    for a, b in db.edges:
        ra, rb = _find(absorb, a), _find(absorb, b)
        ia, ib = new_index[ra], new_index[rb]
        if ia != ib:
            edges.add((ia, ib))
    return ConnectivityDatabase(regions=regions, edges=edges)


def _find(absorb: dict[int, int], idx: int) -> int:
    """Path-compressing representative lookup."""
    root = idx
    while absorb[root] != root:
        root = absorb[root]
    while absorb[idx] != root:
        absorb[idx], idx = root, absorb[idx]
    return root
