"""The unified backend adapter contract.

Every execution backend — the sequential MPI-style :class:`Compass`, the
one-sided :class:`PgasCompass`, and the host-parallel process pool — is
driven through one :class:`SimulatorAdapter` surface:

    prepare(network, layout)  ->  run_ticks(n)  ->  collect()  ->  teardown()

The serve layer, the shard router, the CLI ``run`` path, and the
resilience driver all program against this contract instead of
hand-rolling their own prepare/run/collect lifecycles, so backend
selection is a string and setup-cost accounting lives in exactly one
place.  The abstract-adapter shape follows the scaffold/adapter split in
SNIPPETS.md snippet 3 (bsb's ``SimulatorAdapter``): ``prepare`` turns a
compiled model into backend state, the run methods advance the simulated
clock, and ``collect`` returns the backend-independent result.

Determinism contract: for the same network, layout, and injected inputs,
every adapter produces byte-identical spike digests, per-tick metrics,
and observability event streams (see docs/execution.md).  Host-side
wall-clock accounting (``metrics.host``) is explicitly *outside* that
contract.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.core.config import CompassConfig
from repro.core.metrics import RunMetrics
from repro.core.partition import Partition
from repro.core.simulator import RunResult, SpikeRecorder
from repro.errors import ExecError
from repro.obs import Observability


@dataclass
class ExecLayout:
    """How to lay a model out over simulated ranks and host workers.

    The simulated geometry (``n_processes``, ``threads_per_process``,
    ``machine``) is exactly :class:`CompassConfig`; the host geometry
    (``workers``, ``window_bytes``) only exists for pool backends and
    never affects simulated results.
    """

    n_processes: int = 1
    threads_per_process: int = 1
    machine: Any = None
    record_spikes: bool = False
    partition: Partition | None = None
    sanitize: bool = False
    #: Host worker processes (pool backends only; 1 elsewhere).
    workers: int = 1
    #: Per-worker shared-memory spike window capacity (pool PGAS path).
    window_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ExecError(f"workers must be >= 1, got {self.workers}")
        if self.window_bytes < 1024:
            raise ExecError(
                f"window_bytes must be >= 1024, got {self.window_bytes}"
            )

    def compass_config(self) -> CompassConfig:
        """The simulated-geometry half, as the core config object."""
        return CompassConfig(
            n_processes=self.n_processes,
            threads_per_process=self.threads_per_process,
            machine=self.machine,
            record_spikes=self.record_spikes,
        )

    @classmethod
    def from_config(cls, config: CompassConfig, **host: Any) -> "ExecLayout":
        """Lift a :class:`CompassConfig` into a layout (host geometry kwargs)."""
        return cls(
            n_processes=config.n_processes,
            threads_per_process=config.threads_per_process,
            machine=config.machine,
            record_spikes=config.record_spikes,
            **host,
        )


class SimulatorAdapter(ABC):
    """Abstract lifecycle every execution backend implements.

    Concrete adapters are cheap to construct; all heavy work happens in
    :meth:`prepare`.  ``prepare`` returns ``self`` so call sites can
    chain: ``make_adapter("pgas").prepare(net, layout).run(100)``.

    Beyond the four lifecycle verbs, the contract carries the checkpoint
    surface (``capture``/``restore``/``state_nbytes``), the external
    input surface (``inject``/``attach_schedule``), and the attributes
    the resilience and serve layers consume (``tick``, ``metrics``,
    ``recorder``, ``cluster``, ``config``, ``obs``) — so those layers
    never reach into backend internals.
    """

    #: Backend identifier (adapter registry key).
    backend: str = "abstract"
    #: Whether simulated fault schedules (``repro.resilience.faults``)
    #: can be injected into this backend's communication layer.
    supports_simulated_faults: bool = False

    # -- lifecycle ---------------------------------------------------------

    @abstractmethod
    def prepare(self, network: Any, layout: ExecLayout) -> "SimulatorAdapter":
        """Instantiate backend state for ``network`` laid out by ``layout``."""

    @abstractmethod
    def step(self) -> Any:
        """Advance one simulated tick; returns that tick's metrics."""

    def run_ticks(self, n: int) -> None:
        """Advance ``n`` simulated ticks."""
        for _ in range(n):
            self.step()

    @abstractmethod
    def collect(self) -> RunResult:
        """The backend-independent result of everything run so far."""

    def teardown(self) -> None:
        """Release backend resources (host processes, shared memory)."""

    def run(self, ticks: int) -> RunResult:
        """Convenience: ``run_ticks`` then ``collect``."""
        self.run_ticks(ticks)
        return self.collect()

    def __enter__(self) -> "SimulatorAdapter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.teardown()

    # -- checkpoint surface ------------------------------------------------

    @abstractmethod
    def capture(self) -> dict[str, Any]:
        """Coordinated snapshot at a tick boundary (checkpoint format)."""

    @abstractmethod
    def restore(self, state: dict[str, Any]) -> None:
        """Restore a :meth:`capture` snapshot in place."""

    @abstractmethod
    def state_nbytes(self) -> int:
        """Checkpoint payload size without taking the copies."""

    # -- external input ------------------------------------------------------

    @abstractmethod
    def inject(self, gid: int, axon: int, tick: int) -> None:
        """Schedule an external spike to arrive at (gid, axon) at ``tick``."""

    def inject_batch(self, gids: np.ndarray, axons: np.ndarray, tick: int) -> None:
        for g, a in zip(np.asarray(gids).ravel(), np.asarray(axons).ravel()):
            self.inject(int(g), int(a), tick)

    def attach_schedule(self, triples) -> None:
        for gid, axon, tick in triples:
            self.inject(gid, axon, tick)

    # -- observability -------------------------------------------------------

    @abstractmethod
    def adopt_obs(self, obs: Observability) -> None:
        """Switch observability bundles (spare-rank takeover path)."""

    # -- attributes every call site may rely on ------------------------------

    @property
    @abstractmethod
    def tick(self) -> int: ...

    @property
    @abstractmethod
    def metrics(self) -> RunMetrics: ...

    @metrics.setter
    @abstractmethod
    def metrics(self, value: RunMetrics) -> None: ...

    @property
    @abstractmethod
    def recorder(self) -> SpikeRecorder | None: ...

    @recorder.setter
    @abstractmethod
    def recorder(self, value: SpikeRecorder | None) -> None: ...

    @property
    @abstractmethod
    def network(self) -> Any: ...

    @property
    @abstractmethod
    def config(self) -> CompassConfig: ...

    @property
    @abstractmethod
    def obs(self) -> Observability: ...

    @property
    @abstractmethod
    def cluster(self) -> Any: ...

    @property
    def n_ranks(self) -> int:
        return self.config.n_processes


#: Registered backend names -> adapter factory.  Filled by the concrete
#: modules at import time (see ``register_backend``).
_BACKENDS: dict[str, Any] = {}


def register_backend(name: str, factory: Any) -> None:
    """Register an adapter factory under ``name`` (idempotent)."""
    _BACKENDS[name] = factory


def backend_names() -> tuple[str, ...]:
    """All registered backend names, sorted."""
    _ensure_registered()
    return tuple(sorted(_BACKENDS))


def _ensure_registered() -> None:
    # Import side effect: the concrete modules self-register.
    from repro.exec import pool, sequential  # noqa: F401


def make_adapter(
    backend: str, obs: Observability | None = None, **kwargs: Any
) -> SimulatorAdapter:
    """Build an (unprepared) adapter for ``backend``.

    Known names: ``sequential`` (alias ``mpi``), ``pgas``, ``pool``
    (host-parallel, shared-memory PGAS windows), ``pool-mpi``
    (host-parallel, pickled mailbox batches).
    """
    _ensure_registered()
    try:
        factory = _BACKENDS[backend]
    except KeyError:
        raise ExecError(
            f"unknown execution backend {backend!r}; "
            f"known: {', '.join(sorted(_BACKENDS))}"
        ) from None
    return factory(obs=obs, **kwargs)


def as_adapter(sim: Any) -> SimulatorAdapter:
    """Wrap an already-built simulator (or pass an adapter through).

    Lets call sites that still construct :class:`Compass` /
    :class:`PgasCompass` directly (factories handed to the resilience
    driver, tests) join the adapter-only world without rebuilding.
    """
    if isinstance(sim, SimulatorAdapter):
        return sim
    from repro.exec.sequential import PgasAdapter, SequentialAdapter

    if getattr(sim, "backend", None) == "pgas":
        return PgasAdapter.wrap(sim)
    return SequentialAdapter.wrap(sim)


@dataclass(frozen=True)
class SetupCostModel:
    """One source of truth for modelled backend setup/span costs.

    The serve layer and the shard router used to carry their own copies
    of the "how much simulated time does preparing a backend cost"
    arithmetic.  Both now charge through this model: a fixed setup cost
    per prepared backend plus a per-tick and per-delivered-spike cost,
    in simulated microseconds.
    """

    setup_us: float = 20_000.0
    tick_us: float = 50.0
    spike_us: float = 0.02

    def span_cost_us(self, ticks: int, spikes: int, *, cold: bool) -> float:
        """Modelled simulated cost of a batch run (``cold`` = first build)."""
        cost = ticks * self.tick_us + spikes * self.spike_us
        if cold:
            cost += self.setup_us
        return cost


@dataclass
class _InjectionLedger:
    """Pending (gid, axon) inputs keyed by tick — shared by adapters."""

    pending: dict[int, list[tuple[int, int]]] = field(default_factory=dict)

    def add(self, gid: int, axon: int, tick: int, now: int) -> None:
        if tick < now:
            raise ValueError(f"cannot inject into past tick {tick} (now {now})")
        self.pending.setdefault(tick, []).append((int(gid), int(axon)))

    def pop(self, tick: int) -> list[tuple[int, int]]:
        return self.pending.pop(tick, [])

    def snapshot(self) -> dict[int, list[tuple[int, int]]]:
        return {t: list(v) for t, v in self.pending.items()}

    def restore(self, snap: dict[int, list[tuple[int, int]]]) -> None:
        self.pending = {t: list(v) for t, v in snap.items()}

    def __iter__(self) -> Iterator[int]:
        return iter(self.pending)
