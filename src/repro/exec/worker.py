"""The host worker process of the :class:`ProcessPoolAdapter`.

Each worker owns a contiguous span of *simulated* ranks: their
:class:`CoreBlock` state, local buffers, and remote send buffers.  Per
tick it runs exactly the sequential backend's numeric sequence for each
owned rank (synapse → neuron → route → flush), exchanges cross-worker
spike batches, delivers, and ships a compact per-rank stats record back
to the parent — which replays all observability emissions in the
sequential order, keeping every report/trace/metric byte identical to
the sequential backend (see docs/execution.md).

Exchange is flavor-specific:

* ``mpi``  — pickled mailbox batches: every worker sends exactly one
  (possibly empty) message per peer per tick through the peer's inbox
  queue, then performs exactly ``workers - 1`` receives.  The
  fixed-cardinality exchange is the host-level mirror of the paper's
  Reduce-Scatter: each worker always knows how many messages to expect.
* ``pgas`` — one-sided puts of encoded batches into the destination
  worker's shared-memory ring window (:mod:`repro.exec.windows`),
  separated from the read epoch by one barrier per tick.

Determinism: workers never consult host entropy — all state derives
from the network's seeds, blocks are built per worker from the same
partition arithmetic as the sequential backend, and cross-worker
arrival order is irrelevant because spike delivery is a commutative
bit-OR into axon buffers (§VII-A).  Host timing (``process_time``,
``perf_counter``) is measured but travels in the stats record only;
the simulated results never depend on it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.arch.coreblock import CoreBlock
from repro.arch.spike import SpikeBatch
from repro.core.buffers import LocalBuffer, RemoteSendBuffers
from repro.errors import ExecError
from repro.util.hostclock import host_perf_counter

#: Exit code a deliberately crashed worker dies with (crash-injection
#: tests assert on it).
CRASH_EXIT_CODE = 117

#: Backstop timeouts for peer exchange.  The parent detects dead peers
#: by liveness-polling and tears the pool down long before these fire;
#: they only exist so an orphaned worker cannot hang forever.
_EXCHANGE_TIMEOUT_S = 120.0


@dataclass(frozen=True)
class WorkerSpec:
    """Everything static a worker needs (spawn-picklable)."""

    worker_id: int
    n_workers: int
    flavor: str  # "mpi" | "pgas"
    rank_lo: int
    rank_hi: int
    #: (rank_lo, rank_hi) per worker — the simulated-rank → host-worker map.
    rank_spans: tuple[tuple[int, int], ...]
    n_processes: int
    record_spikes: bool

    def worker_of_rank(self, rank: int) -> int:
        for w, (lo, hi) in enumerate(self.rank_spans):
            if lo <= rank < hi:
                return w
        raise ExecError(f"rank {rank} outside every worker span")


@dataclass
class RankTickStats:
    """Per-simulated-rank record the parent replays a tick from."""

    rank: int
    n_active: int
    n_fired: int
    n_local: int
    n_remote: int
    #: Aggregated outgoing batches, ascending destination rank.
    msgs: tuple[tuple[int, int], ...]  # (dest_rank, spike_count)
    #: Fired (gids, neurons) arrays when spike recording is on.
    fired_gids: Any = None
    fired_neurons: Any = None


class _RankSlot:
    """One owned simulated rank's live state inside the worker."""

    __slots__ = ("rank", "block", "local_buf", "remote_bufs")

    def __init__(self, rank: int, block: CoreBlock, n_processes: int) -> None:
        self.rank = rank
        self.block = block
        self.local_buf = LocalBuffer()
        self.remote_bufs = RemoteSendBuffers(n_processes, rank)


def _build_slots(spec: WorkerSpec, network: Any, partition: Any) -> dict[int, _RankSlot]:
    slots: dict[int, _RankSlot] = {}
    for rank in range(spec.rank_lo, spec.rank_hi):
        lo, hi = partition.range_of_rank(rank)
        slots[rank] = _RankSlot(rank, CoreBlock(network, lo, hi), spec.n_processes)
    return slots


def _block_state_nbytes(block: CoreBlock) -> int:
    return (
        block.state.potential.nbytes
        + block.state.rng.state.nbytes
        + block.buffers.pending.nbytes
    )


def _step(
    spec: WorkerSpec,
    slots: dict[int, _RankSlot],
    partition: Any,
    tick: int,
    injections: list[tuple[int, int]],
    inboxes: Any,
    windows: Any,
    barrier: Any,
) -> dict[str, Any]:
    """One simulated tick over this worker's ranks; returns the stats record."""
    from repro.arch.params import DELAY_SLOTS

    # Host CPU accounting travels in the stats record for the parent's
    # utilization line only — outside the determinism contract.
    # repro: allow[FLOW201] host accounting only, never simulated state
    cpu0 = time.process_time()
    for gid, axon in injections:
        rank = int(partition.rank_of_gid(gid))
        block = slots[rank].block
        block.buffers.pending[gid - block.gid_lo, tick % DELAY_SLOTS, axon] = True

    host_synapse = 0.0
    host_neuron = 0.0
    rank_stats: list[RankTickStats] = []
    outgoing: dict[int, dict[int, SpikeBatch]] = {}
    for rank in sorted(slots):
        rs = slots[rank]
        t0 = host_perf_counter()
        counts = rs.block.synapse_phase(tick)
        t1 = host_perf_counter()
        fired = rs.block.neuron_phase(counts)
        fired_gids = fired_neurons = None
        if spec.record_spikes:
            cs, ns = np.nonzero(fired)
            fired_gids = rs.block.gids[cs]
            fired_neurons = ns
        out = rs.block.outgoing(fired)
        dest_ranks = np.asarray(partition.rank_of_gid(out.tgt_gid))
        local = dest_ranks == rank
        rs.local_buf.push(out.tgt_gid[local], out.tgt_axon[local], out.delay[local])
        remote = ~local
        rs.remote_bufs.push(
            dest_ranks[remote],
            out.tgt_gid[remote],
            out.tgt_axon[remote],
            out.delay[remote],
        )
        msgs = rs.remote_bufs.flush(tick)
        outgoing[rank] = msgs
        t2 = host_perf_counter()
        host_synapse += t1 - t0
        host_neuron += t2 - t1
        rank_stats.append(
            RankTickStats(
                rank=rank,
                n_active=rs.block.last_active_axons,
                n_fired=int(fired.sum()),
                n_local=int(local.sum()),
                n_remote=int(remote.sum()),
                msgs=tuple((int(d), b.count) for d, b in msgs.items()),
                fired_gids=fired_gids,
                fired_neurons=fired_neurons,
            )
        )

    # Network phase: local delivery, then the cross-worker exchange.
    tn0 = host_perf_counter()
    for rank in sorted(slots):
        rs = slots[rank]
        gids, axons, delays = rs.local_buf.drain()
        rs.block.deliver(gids, axons, delays, tick)

    if spec.flavor == "mpi":
        _exchange_mpi(spec, slots, outgoing, tick, inboxes)
    else:
        _exchange_pgas(spec, slots, outgoing, tick, windows, barrier)

    host_network = host_perf_counter() - tn0
    return {
        "ranks": rank_stats,
        "host": (host_synapse, host_neuron, host_network),
        # repro: allow[FLOW201] host accounting only, never simulated state
        "cpu_s": time.process_time() - cpu0,
    }


def _deliver(slots: dict[int, _RankSlot], dest: int, batch: SpikeBatch, tick: int) -> None:
    slots[dest].block.deliver(batch.tgt_gid, batch.tgt_axon, batch.delay, tick)


def _exchange_mpi(
    spec: WorkerSpec,
    slots: dict[int, _RankSlot],
    outgoing: dict[int, dict[int, SpikeBatch]],
    tick: int,
    inboxes: Any,
) -> None:
    """Fixed-cardinality pickled-batch exchange (one message per peer)."""
    per_peer: dict[int, list[tuple[int, int, bytes]]] = {
        w: [] for w in range(spec.n_workers) if w != spec.worker_id
    }
    for src_rank in sorted(outgoing):
        # repro: allow[FLOW204] delivery is a commutative bit-OR (§VII-A)
        for dest, batch in outgoing[src_rank].items():
            w = spec.worker_of_rank(dest)
            if w == spec.worker_id:
                _deliver(slots, dest, batch, tick)
            else:
                per_peer[w].append((src_rank, dest, batch.encode()))
    # repro: allow[FLOW204] per_peer keys come from range() — ascending
    for w, items in per_peer.items():
        inboxes[w].put((spec.worker_id, tick, items))
    for _ in range(spec.n_workers - 1):
        # The parent's liveness polling is the real failure detector;
        # this timeout only keeps an orphaned worker from hanging.
        # repro: allow[DET106] host-side exchange backstop, never sim-visible
        sender, msg_tick, items = inboxes[spec.worker_id].get(
            timeout=_EXCHANGE_TIMEOUT_S
        )
        if msg_tick != tick:
            raise ExecError(
                f"worker {spec.worker_id}: tick skew — peer {sender} sent "
                f"tick {msg_tick} during tick {tick}"
            )
        for _src, dest, payload in items:
            _deliver(slots, dest, SpikeBatch.decode(payload), tick)


def _exchange_pgas(
    spec: WorkerSpec,
    slots: dict[int, _RankSlot],
    outgoing: dict[int, dict[int, SpikeBatch]],
    tick: int,
    windows: Any,
    barrier: Any,
) -> None:
    """One-sided puts into shared windows; one barrier per tick."""
    for src_rank in sorted(outgoing):
        # repro: allow[FLOW204] delivery is a commutative bit-OR (§VII-A)
        for dest, batch in outgoing[src_rank].items():
            w = spec.worker_of_rank(dest)
            if w == spec.worker_id:
                _deliver(slots, dest, batch, tick)
            else:
                windows[w].put(src_rank, dest, batch.encode())
    # The parent aborts the barrier when it detects a dead peer.
    # repro: allow[DET106] host barrier backstop, never sim-visible
    barrier.wait(timeout=_EXCHANGE_TIMEOUT_S)
    for _src, dest, payload in windows[spec.worker_id].drain():
        _deliver(slots, dest, SpikeBatch.decode(payload), tick)


def worker_main(
    spec: WorkerSpec,
    network: Any,
    partition: Any,
    cmd_q: Any,
    res_q: Any,
    inboxes: Any,
    windows: Any,
    barrier: Any,
) -> None:
    """Worker entry point (spawn target): serve parent commands forever.

    The parent is the tick-boundary barrier: it sends one ``step``
    command per tick and collects every worker's stats before the next,
    so no worker can run ahead of the simulated clock.
    """
    if windows is not None:
        for win in windows:
            win.attach()
    slots = _build_slots(spec, network, partition)
    res_q.put(
        (
            "ready",
            spec.worker_id,
            # repro: allow[FLOW204] slots keys come from range() — ascending
            {rank: _block_state_nbytes(rs.block) for rank, rs in slots.items()},
        )
    )
    crash_at: int | None = None
    try:
        while True:
            cmd = cmd_q.get()
            op = cmd[0]
            if op == "step":
                tick, injections = cmd[1], cmd[2]
                if crash_at is not None and tick >= crash_at:
                    # Simulates a hard host failure: no goodbye message,
                    # no cleanup — the parent must notice on its own.
                    os._exit(CRASH_EXIT_CODE)
                stats = _step(
                    spec, slots, partition, tick, injections, inboxes, windows, barrier
                )
                res_q.put(("tick", spec.worker_id, tick, stats))
            elif op == "capture":
                res_q.put(
                    (
                        "state",
                        spec.worker_id,
                        # repro: allow[FLOW204] slots keys come from range() — ascending
                        {rank: rs.block.snapshot() for rank, rs in slots.items()},
                    )
                )
            elif op == "restore":
                for rank, snap in cmd[1].items():
                    rs = slots[rank]
                    rs.block.restore(snap)
                    rs.local_buf.drain()
                    rs.remote_bufs.flush(0)
                res_q.put(("ok", spec.worker_id))
            elif op == "crash_at":
                crash_at = cmd[1]
            elif op == "stop":
                return
            else:
                raise ExecError(f"unknown worker command {op!r}")
    # Every failure must surface to the parent as a message, not as a
    # silent host-process death.
    # repro: allow[DET105] worker boundary, reported to the parent
    except BaseException as exc:  # noqa: BLE001
        try:
            res_q.put(
                ("error", spec.worker_id, type(exc).__name__, str(exc))
            )
        # repro: allow[DET105] result queue already torn down by the parent
        except Exception:  # pragma: no cover - queue already torn down
            pass
    finally:
        if windows is not None:
            for win in windows:
                win.close()
