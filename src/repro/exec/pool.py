"""Host-parallel execution: simulated ranks on real cores.

:class:`ProcessPoolAdapter` spawns host worker processes
(:mod:`repro.exec.worker`), each owning a contiguous span of simulated
ranks, and drives them in lock-step: one ``step`` command per tick, all
stats collected before the next — the parent *is* the deterministic
tick-boundary barrier.

Byte-identity by construction (the parent-replay model): workers do only
the numeric work and ship a compact per-rank stats record; the parent
owns every observability object — spike recorder, metric registry, span
tracer, run metrics — and replays the sequential backend's emission
sequence exactly from those stats.  The simulated clock, LCG streams,
per-tick fired counts, and all report/trace/metric bytes therefore match
:class:`SequentialAdapter` / :class:`PgasAdapter` bit for bit (the
1-vs-4-worker digest tests in ``tests/integration`` pin this).  Host
wall-clock accounting (``metrics.host``, utilization) is measured, not
replayed, and is outside the determinism contract.

Failure model: a worker that dies takes all its simulated ranks with it.
The parent liveness-polls while collecting stats and surfaces the death
as :class:`WorkerCrashError` — a :class:`FailureDetectedError` — so
:class:`ResilientRunner` checkpoint/rollback works unchanged; its
``restore`` respawns the pool and pushes the checkpointed block
snapshots back to fresh workers.

Unsupported with the pool (typed :class:`ExecError` at ``prepare``):
the happens-before sanitizer, machine timing models, host profiling
(``obs.prof``), and simulated fault schedules — each needs in-process
access to backend internals that now live across process boundaries.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
from typing import Any

from repro.arch.spike import SPIKE_WIRE_BYTES
from repro.core.config import CompassConfig
from repro.core.metrics import PhaseTimes, RunMetrics, TickMetrics
from repro.core.partition import Partition
from repro.core.simulator import CompassBase, RunResult, SpikeRecorder
from repro.errors import ExecError, WorkerCrashError
from repro.exec.adapter import (
    ExecLayout,
    SimulatorAdapter,
    _InjectionLedger,
    register_backend,
)
from repro.exec.windows import SpikeWindow
from repro.exec.worker import WorkerSpec, worker_main
from repro.obs import Observability
from repro.util.hostclock import host_perf_counter

#: Parent-side liveness poll period while waiting on worker results.
_POLL_S = 0.2
#: How long a worker gets to come up / answer a control command.
_CONTROL_TIMEOUT_S = 120.0


def _spans(n: int, k: int) -> tuple[tuple[int, int], ...]:
    """Split ``n`` items into ``k`` contiguous spans (Partition's rule)."""
    base, extra = divmod(n, k)
    spans = []
    lo = 0
    for i in range(k):
        hi = lo + base + (1 if i < extra else 0)
        spans.append((lo, hi))
        lo = hi
    return tuple(spans)


class PoolCluster:
    """The pool's cluster facade for the resilience driver.

    Presents the surface :class:`ResilientRunner` touches — ``dead``,
    ``revive_rank``, ``reset_communication``, an ``injector`` slot —
    mapped onto host-process reality.  Simulated per-rank faults
    (``fail_rank``) are impossible across process boundaries and raise.
    """

    def __init__(self, pool: "ProcessPoolAdapter") -> None:
        self._pool = pool
        #: Simulated ranks currently lost to a dead host worker.
        self.dead: set[int] = set()
        self.injector: Any = None
        self.tracer: Any = None
        #: No in-process mailboxes; the fault injector's transport-level
        #: dedup pass iterates this and finds nothing to purge.
        self.mailboxes: tuple = ()

    def fail_rank(self, rank: int) -> None:
        raise ExecError(
            "the process pool cannot fail individual simulated ranks; "
            "use inject_worker_crash for host-level failures"
        )

    def revive_rank(self, rank: int) -> None:
        self.dead.discard(rank)

    def reset_communication(self) -> None:
        self._pool._respawn_if_broken()


class ProcessPoolAdapter(SimulatorAdapter):
    """Run simulated ranks on actual host cores via ``multiprocessing``.

    ``flavor`` picks the exchange: ``"pgas"`` (default; shared-memory
    ring-buffer spike windows) or ``"mpi"`` (pickled mailbox batches).
    The replayed observability stream matches the corresponding
    sequential backend — ``pool`` vs :class:`PgasAdapter`, ``pool-mpi``
    vs :class:`SequentialAdapter`.
    """

    backend = "pool"
    supports_simulated_faults = False

    def __init__(
        self,
        obs: Observability | None = None,
        flavor: str = "pgas",
        workers: int | None = None,
    ) -> None:
        if flavor not in ("mpi", "pgas"):
            raise ExecError(f"unknown pool flavor {flavor!r} (mpi|pgas)")
        self.flavor = flavor
        self.backend = "pool" if flavor == "pgas" else "pool-mpi"
        self._obs = obs if obs is not None else Observability.off()
        self._workers_arg = workers
        self._prepared = False
        self._broken = False
        self._procs: list[Any] = []
        self._cmd_qs: list[Any] = []
        self._res_q: Any = None
        self._inboxes: list[Any] | None = None
        self._windows: list[SpikeWindow] | None = None
        self._barrier: Any = None
        self.host_cpu_s = 0.0
        self.host_wall_s = 0.0

    # -- lifecycle ---------------------------------------------------------

    def prepare(self, network: Any, layout: ExecLayout) -> "ProcessPoolAdapter":
        if self._prepared:
            raise ExecError("adapter already prepared; build a fresh one")
        if layout.sanitize:
            raise ExecError(
                "the happens-before sanitizer needs in-process message "
                "interception; run it on the sequential backend"
            )
        if layout.machine is not None:
            raise ExecError(
                "machine timing models are sequential-only; the pool's "
                "simulated results carry no modelled phase times"
            )
        if getattr(self._obs.prof, "enabled", False):
            raise ExecError(
                "host profiling (obs.prof) meters in-process phase "
                "boundaries; profile the sequential backend instead"
            )
        self._network = network
        self._config = layout.compass_config()
        self._partition = layout.partition or Partition(
            network.n_cores, layout.n_processes
        )
        if self._partition.n_cores != network.n_cores:
            raise ExecError(
                f"partition covers {self._partition.n_cores} cores, "
                f"network has {network.n_cores}"
            )
        if self._partition.n_ranks != layout.n_processes:
            raise ExecError(
                f"partition has {self._partition.n_ranks} ranks, "
                f"layout requests {layout.n_processes}"
            )
        n_workers = self._workers_arg or layout.workers
        self.n_workers = max(1, min(n_workers, layout.n_processes))
        self._window_bytes = layout.window_bytes
        self._rank_spans = _spans(layout.n_processes, self.n_workers)
        self.tick_ = 0
        self._metrics = RunMetrics(n_ranks=layout.n_processes)
        self._recorder = (
            SpikeRecorder() if layout.record_spikes else None
        )
        self._ledger = _InjectionLedger()
        self._epoch = 0
        from repro.runtime.collectives import modelled_sync_cost

        self._sync_model_s = modelled_sync_cost(
            "pgas" if self.flavor == "pgas" else "mpi",
            layout.n_processes,
        )
        self._cluster = PoolCluster(self)
        # The parent owns the instruments; reuse the sequential backend's
        # binding so names, helps, and buckets can never drift.
        CompassBase._bind_instruments(self)
        self._n_cores_of_rank = [
            hi - lo
            for lo, hi in (
                self._partition.range_of_rank(r)
                for r in range(layout.n_processes)
            )
        ]
        self._state_nbytes_of_rank: dict[int, int] = {}
        self._spawn()
        self._prepared = True
        return self

    def _spawn(self) -> None:
        ctx = multiprocessing.get_context("spawn")
        self._ctx = ctx
        self._res_q = ctx.Queue()
        self._cmd_qs = [ctx.Queue() for _ in range(self.n_workers)]
        if self.flavor == "mpi":
            self._inboxes = [ctx.Queue() for _ in range(self.n_workers)]
            self._windows = None
            self._barrier = None
        else:
            self._inboxes = None
            self._windows = [
                SpikeWindow.create(ctx, w, self._window_bytes)
                for w in range(self.n_workers)
            ]
            self._barrier = ctx.Barrier(self.n_workers)
        self._procs = []
        for w in range(self.n_workers):
            lo, hi = self._rank_spans[w]
            spec = WorkerSpec(
                worker_id=w,
                n_workers=self.n_workers,
                flavor=self.flavor,
                rank_lo=lo,
                rank_hi=hi,
                rank_spans=self._rank_spans,
                n_processes=self._config.n_processes,
                record_spikes=self._config.record_spikes,
            )
            proc = ctx.Process(
                target=worker_main,
                args=(
                    spec,
                    self._network,
                    self._partition,
                    self._cmd_qs[w],
                    self._res_q,
                    self._inboxes,
                    self._windows,
                    self._barrier,
                ),
                daemon=True,
                name=f"repro-exec-{self.backend}-{w}",
            )
            proc.start()
            self._procs.append(proc)
        ready = 0
        while ready < self.n_workers:
            msg = self._await_result(phase="startup")
            if msg[0] != "ready":
                raise ExecError(
                    f"worker {msg[1]} failed during startup: {msg[2:]}"
                )
            self._state_nbytes_of_rank.update(msg[2])
            ready += 1
        self._broken = False

    def _await_result(self, phase: str) -> tuple:
        """One result-queue message, liveness-polling the workers."""
        deadline = host_perf_counter() + _CONTROL_TIMEOUT_S
        while True:
            try:
                # repro: allow[DET106] host-side liveness poll, never sim-visible
                return self._res_q.get(timeout=_POLL_S)
            except queue_mod.Empty:
                dead = [
                    w for w, p in enumerate(self._procs) if not p.is_alive()
                ]
                if dead:
                    self._on_worker_death(dead, phase)
                if host_perf_counter() > deadline:
                    self._kill_workers()
                    self._broken = True
                    raise ExecError(
                        f"pool timed out waiting for workers during {phase}"
                    )

    def _on_worker_death(self, dead_workers: list[int], phase: str) -> None:
        """A host worker vanished: tear the tick down, surface the loss."""
        dead_ranks: set[int] = set()
        codes = []
        for w in dead_workers:
            lo, hi = self._rank_spans[w]
            dead_ranks.update(range(lo, hi))
            codes.append(self._procs[w].exitcode)
        self._cluster.dead |= dead_ranks
        self._broken = True
        if self._barrier is not None:
            try:
                self._barrier.abort()
            # repro: allow[DET105] best-effort host teardown, never sim-visible
            except Exception:  # pragma: no cover - barrier already gone
                pass
        self._kill_workers()
        raise WorkerCrashError(
            f"host worker(s) {dead_workers} died (exit {codes}) during "
            f"{phase}; simulated ranks {sorted(dead_ranks)} lost",
            ranks=tuple(sorted(dead_ranks)),
        )

    def _kill_workers(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5)  # repro: allow[DET106] host-side teardown
        for q in [*self._cmd_qs, *(self._inboxes or [])]:
            q.cancel_join_thread()
        if self._res_q is not None:
            self._res_q.cancel_join_thread()

    def _respawn_if_broken(self) -> None:
        if not self._broken:
            return
        self._kill_workers()
        if self._windows is not None:
            for win in self._windows:
                win.unlink()
        self._spawn()

    def teardown(self) -> None:
        if not self._procs:
            return
        if not self._broken:
            for q in self._cmd_qs:
                try:
                    q.put(("stop",))
                # repro: allow[DET105] best-effort host teardown, never sim-visible
                except Exception:  # pragma: no cover - queue torn down
                    pass
        for proc in self._procs:
            proc.join(timeout=5)  # repro: allow[DET106] host-side teardown
        self._kill_workers()
        if self._windows is not None:
            for win in self._windows:
                win.unlink()
        self._procs = []

    # -- fault injection (host level) ---------------------------------------

    def inject_worker_crash(self, tick: int, worker: int = 0) -> None:
        """Arm a one-shot hard crash of host ``worker`` at ``tick``."""
        if not 0 <= worker < self.n_workers:
            raise ExecError(f"no such worker {worker}")
        self._cmd_qs[worker].put(("crash_at", tick))

    # -- the tick ------------------------------------------------------------

    def step(self) -> TickMetrics:
        if not self._prepared:
            raise ExecError("prepare() the adapter before stepping")
        if self._broken:
            raise ExecError(
                "pool is broken after a worker crash; restore() a "
                "checkpoint (or teardown) first"
            )
        tick = self.tick_
        wall0 = host_perf_counter()
        pending = self._ledger.pop(tick)
        per_worker_inj: list[list[tuple[int, int]]] = [
            [] for _ in range(self.n_workers)
        ]
        for gid, axon in pending:
            rank = int(self._partition.rank_of_gid(gid))
            per_worker_inj[self._worker_of_rank(rank)].append((gid, axon))
        for w in range(self.n_workers):
            self._cmd_qs[w].put(("step", tick, per_worker_inj[w]))
        stats_by_worker: dict[int, dict] = {}
        while len(stats_by_worker) < self.n_workers:
            msg = self._await_result(phase=f"tick {tick}")
            kind, wid = msg[0], msg[1]
            if kind == "error":
                _, _, exc_type, text = msg
                self._broken = True
                self._kill_workers()
                raise ExecError(
                    f"worker {wid} failed during tick {tick} "
                    f"({exc_type}): {text}"
                )
            if kind != "tick" or msg[2] != tick:
                self._broken = True
                self._kill_workers()
                raise ExecError(
                    f"protocol skew: expected tick {tick} stats from "
                    f"worker {wid}, got {kind!r}"
                )
            stats_by_worker[wid] = msg[3]
        rank_stats = []
        for w in range(self.n_workers):
            rank_stats.extend(stats_by_worker[w]["ranks"])
        rank_stats.sort(key=lambda st: st.rank)
        host = PhaseTimes()
        for w in range(self.n_workers):
            s, n, net = stats_by_worker[w]["host"]
            host.synapse += s
            host.neuron += n
            host.network += net
            self.host_cpu_s += stats_by_worker[w]["cpu_s"]
        tm = self._replay_tick(tick, rank_stats, host)
        self.host_wall_s += host_perf_counter() - wall0
        return tm

    def _worker_of_rank(self, rank: int) -> int:
        for w, (lo, hi) in enumerate(self._rank_spans):
            if lo <= rank < hi:
                return w
        raise ExecError(f"rank {rank} outside every worker span")

    # -- the replay engine ----------------------------------------------------
    #
    # Mirrors Compass.step / PgasCompass.step emission for emission; any
    # change to the sequential instrumentation sequence must be reflected
    # here (the 1-vs-4-worker digest tests catch drift).

    def _replay_tick(self, tick: int, rank_stats: list, host: PhaseTimes) -> TickMetrics:
        tr = self._obs.tracer
        if tr.enabled:
            tr.begin_tick(tick)
        tm = TickMetrics(tick=tick)
        self._replay_compute(tick, rank_stats, tm, tr)
        if self.flavor == "mpi":
            self._replay_network_mpi(tick, rank_stats, tm, tr)
        else:
            self._replay_network_pgas(tick, rank_stats, tm, tr)
        self._metrics.host += host
        self._metrics.record_tick(tm)
        self._h_msgs_tick.observe(-1, tm.messages)
        if tr.enabled:
            tr.tick_summary(
                tick,
                fired=tm.fired,
                spikes=tm.local_spikes + tm.remote_spikes,
                neurons=tm.neurons_evaluated,
                active_axons=tm.active_axons,
            )
        self.tick_ += 1
        return tm

    def _replay_compute(
        self, tick: int, rank_stats: list, tm: TickMetrics, tr: Any
    ) -> None:
        num_neurons = self._network.num_neurons
        for st in rank_stats:
            rank = st.rank
            n_cores = self._n_cores_of_rank[rank]
            if self._recorder is not None:
                self._recorder.record(tick, st.fired_gids, st.fired_neurons)
            self._m_axons.inc(rank, st.n_active)
            self._m_fired.inc(rank, st.n_fired)
            self._m_local.inc(rank, st.n_local)
            self._m_remote.inc(rank, st.n_remote)
            self._h_spikes_core.observe(rank, st.n_fired / n_cores)
            if tr.enabled:
                tr.span(
                    "compute",
                    rank=rank,
                    phase="compute",
                    tick=tick,
                    active_axons=st.n_active,
                    fired=st.n_fired,
                    local_spikes=st.n_local,
                    remote_spikes=st.n_remote,
                )
                tr.span(
                    "synapse", rank=rank, phase="synapse", tick=tick,
                    active_axons=st.n_active,
                )
                tr.span(
                    "neuron", rank=rank, phase="neuron", tick=tick,
                    fired=st.n_fired, messages=len(st.msgs),
                )
                if self._config.threads_per_process > 1:
                    from repro.runtime.threads import trace_thread_slices

                    trace_thread_slices(
                        tr,
                        rank,
                        n_cores,
                        self._config.threads_per_process,
                        tick=tick,
                    )
            tm.active_axons += st.n_active
            tm.neurons_evaluated += n_cores * num_neurons
            tm.fired += st.n_fired
            tm.local_spikes += st.n_local
            tm.remote_spikes += st.n_remote

    def _incoming(self, rank_stats: list) -> list[list[tuple[int, int]]]:
        """Per-destination (src, count) lists in sequential arrival order.

        The sequential isend loop iterates sources ascending and each
        flush emits destinations ascending, so arrival order at a
        mailbox/window is ascending source rank.
        """
        incoming: list[list[tuple[int, int]]] = [
            [] for _ in range(self._config.n_processes)
        ]
        for st in rank_stats:
            for dest, count in st.msgs:
                incoming[dest].append((st.rank, count))
        return incoming

    def _replay_network_mpi(
        self, tick: int, rank_stats: list, tm: TickMetrics, tr: Any
    ) -> None:
        n = self._config.n_processes
        depth = [0] * n
        sent = [0] * n
        for st in rank_stats:
            for dest, count in st.msgs:
                nbytes = count * SPIKE_WIRE_BYTES
                tm.messages += 1
                tm.bytes_sent += nbytes
                self._m_msgs.inc(st.rank)
                self._m_bytes.inc(st.rank, nbytes)
                self._h_bytes_send.observe(st.rank, nbytes)
                sent[st.rank] += 1
                if tr.enabled:
                    tr.instant(
                        "mpi.isend", rank=st.rank, cat="net",
                        dest=dest, bytes=nbytes,
                    )
                    depth[dest] += 1
                    tr.instant(
                        "mailbox.deliver",
                        rank=dest,
                        cat="net",
                        src=st.rank,
                        bytes=nbytes,
                        depth=depth[dest],
                        dup=False,
                    )
        incoming = self._incoming(rank_stats)
        recv_counts = [len(incoming[r]) for r in range(n)]
        if tr.enabled:
            for rank in range(n):
                tr.instant(
                    "mpi.reduce_scatter",
                    rank=rank,
                    phase="sync",
                    cat="net",
                    sent=sent[rank],
                )
            for rank in range(n):
                tr.instant(
                    "mpi.reduce_scatter.fetch",
                    rank=rank,
                    phase="sync",
                    cat="net",
                    expected=recv_counts[rank],
                )
            for rank in range(n):
                tr.span(
                    "sync",
                    rank=rank,
                    phase="sync",
                    tick=tick,
                    sent=sent[rank],
                    expected=recv_counts[rank],
                    model_s=self._sync_model_s,
                )
        for st in rank_stats:
            rank = st.rank
            self._g_queue.set(rank, recv_counts[rank])
            spikes_received = 0
            bytes_received = 0
            for src, count in incoming[rank]:
                nbytes = count * SPIKE_WIRE_BYTES
                if tr.enabled:
                    tr.instant("mpi.iprobe", rank=rank, cat="net", hit=True)
                    tr.instant(
                        "mpi.recv", rank=rank, cat="net", src=src, bytes=nbytes
                    )
                spikes_received += count
                bytes_received += nbytes
            if tr.enabled:
                tr.span(
                    "network",
                    rank=rank,
                    phase="network",
                    tick=tick,
                    messages=recv_counts[rank],
                    spikes_received=spikes_received,
                    bytes_received=bytes_received,
                    local_delivered=st.n_local,
                )

    def _replay_network_pgas(
        self, tick: int, rank_stats: list, tm: TickMetrics, tr: Any
    ) -> None:
        n = self._config.n_processes
        window_depth = [0] * n
        per_rank_puts = [0] * n
        for st in rank_stats:
            puts = 0
            nbytes_total = 0
            for dest, count in st.msgs:
                nbytes = count * SPIKE_WIRE_BYTES
                window_depth[dest] += 1
                if tr.enabled:
                    tr.instant(
                        "pgas.put",
                        rank=st.rank,
                        cat="net",
                        dest=dest,
                        bytes=nbytes,
                        window_depth=window_depth[dest],
                    )
                self._m_msgs.inc(st.rank)
                self._m_bytes.inc(st.rank, nbytes)
                self._h_bytes_send.observe(st.rank, nbytes)
                puts += 1
                nbytes_total += nbytes
            per_rank_puts[st.rank] = puts
            tm.messages += puts
            tm.bytes_sent += nbytes_total
        if tr.enabled:
            for rank in range(n):
                tr.instant(
                    "pgas.barrier",
                    rank=rank,
                    phase="sync",
                    cat="net",
                    epoch=self._epoch,
                )
            for rank in range(n):
                tr.span(
                    "sync",
                    rank=rank,
                    phase="sync",
                    tick=tick,
                    puts=per_rank_puts[rank],
                    model_s=self._sync_model_s,
                )
        self._epoch += 1
        incoming = self._incoming(rank_stats)
        for st in rank_stats:
            rank = st.rank
            n_batches = len(incoming[rank])
            spikes_received = sum(c for _s, c in incoming[rank])
            self._g_queue.set(rank, n_batches)
            if tr.enabled:
                tr.span(
                    "network",
                    rank=rank,
                    phase="network",
                    tick=tick,
                    messages=n_batches,
                    spikes_received=spikes_received,
                    bytes_received=spikes_received * SPIKE_WIRE_BYTES,
                    local_delivered=st.n_local,
                )

    # -- result / checkpoint --------------------------------------------------

    def collect(self) -> RunResult:
        return RunResult(
            metrics=self._metrics,
            n_neurons=self._network.n_neurons,
            spikes=self._recorder,
        )

    def capture(self) -> dict[str, Any]:
        for q in self._cmd_qs:
            q.put(("capture",))
        snaps: dict[int, dict] = {}
        got = 0
        while got < self.n_workers:
            msg = self._await_result(phase="capture")
            if msg[0] != "state":
                raise ExecError(
                    f"worker {msg[1]} failed during capture: {msg[2:]}"
                )
            snaps.update(msg[2])
            got += 1
        return {
            "tick": self.tick_,
            "blocks": [snaps[r] for r in range(self._config.n_processes)],
            "injections": self._ledger.snapshot(),
            "registry": self._obs.registry.snapshot(prefix="compass_"),
        }

    def restore(self, state: dict[str, Any]) -> None:
        blocks = state["blocks"]
        if len(blocks) != self._config.n_processes:
            raise ExecError(
                f"snapshot has {len(blocks)} ranks, pool simulates "
                f"{self._config.n_processes}"
            )
        self._respawn_if_broken()
        self._cluster.dead.clear()
        for w in range(self.n_workers):
            lo, hi = self._rank_spans[w]
            self._cmd_qs[w].put(
                ("restore", {r: blocks[r] for r in range(lo, hi)})
            )
        got = 0
        while got < self.n_workers:
            msg = self._await_result(phase="restore")
            if msg[0] != "ok":
                raise ExecError(
                    f"worker {msg[1]} failed during restore: {msg[2:]}"
                )
            got += 1
        self.tick_ = int(state["tick"])
        self._ledger.restore(state["injections"])
        registry_snap = state.get("registry")
        if registry_snap is not None:
            self._obs.registry.restore(registry_snap)

    def state_nbytes(self) -> int:
        return sum(self._state_nbytes_of_rank.values())

    # -- external input ------------------------------------------------------

    def inject(self, gid: int, axon: int, tick: int) -> None:
        self._ledger.add(gid, axon, tick, self.tick_)

    # -- observability -------------------------------------------------------

    def adopt_obs(self, obs: Observability) -> None:
        self._obs = obs
        CompassBase._bind_instruments(self)

    def host_utilization(self) -> dict[str, float]:
        """Host-core usage of everything run so far.

        ``utilization`` is worker CPU seconds over parent wall seconds:
        1.0 means one core busy; ``n`` workers on ``n`` free cores
        approach ``n``.
        """
        wall = self.host_wall_s
        return {
            "workers": self.n_workers,
            "cpu_s": self.host_cpu_s,
            "wall_s": wall,
            "utilization": (self.host_cpu_s / wall) if wall > 0 else 0.0,
        }

    # -- contract attributes -------------------------------------------------

    @property
    def tick(self) -> int:
        return self.tick_

    @property
    def metrics(self) -> RunMetrics:
        return self._metrics

    @metrics.setter
    def metrics(self, value: RunMetrics) -> None:
        self._metrics = value

    @property
    def recorder(self) -> SpikeRecorder | None:
        return self._recorder

    @recorder.setter
    def recorder(self, value: SpikeRecorder | None) -> None:
        self._recorder = value

    @property
    def network(self) -> Any:
        return self._network

    @property
    def config(self) -> CompassConfig:
        return self._config

    @property
    def obs(self) -> Observability:
        return self._obs

    @property
    def cluster(self) -> PoolCluster:
        return self._cluster

    @property
    def detector(self) -> None:
        """The pool never carries the in-process sanitizer."""
        return None


def _pool_pgas(obs: Observability | None = None, **kw: Any) -> ProcessPoolAdapter:
    return ProcessPoolAdapter(obs=obs, flavor="pgas", **kw)


def _pool_mpi(obs: Observability | None = None, **kw: Any) -> ProcessPoolAdapter:
    return ProcessPoolAdapter(obs=obs, flavor="mpi", **kw)


register_backend("pool", _pool_pgas)
register_backend("pool-pgas", _pool_pgas)
register_backend("pool-mpi", _pool_mpi)
