"""Adapters over the in-process sequential backends.

:class:`SequentialAdapter` drives the two-sided :class:`Compass`
simulator, :class:`PgasAdapter` the one-sided :class:`PgasCompass`.
Both are thin: the wrapped simulator already owns the full lifecycle,
so the adapter's job is to present the uniform contract (and the
checkpoint surface) to the serve/shard/resilience/CLI call sites.

Unknown attribute access falls through to the wrapped simulator, so
code that predates the adapter layer (``runner.sim.ranks``,
``sim.race_report()``) keeps working against a wrapped instance.
"""

from __future__ import annotations

from typing import Any

from repro.core import checkpoint as ckpt
from repro.core.config import CompassConfig
from repro.core.metrics import RunMetrics
from repro.core.pgas_simulator import PgasCompass
from repro.core.simulator import Compass, RunResult, SpikeRecorder
from repro.exec.adapter import ExecLayout, SimulatorAdapter, register_backend
from repro.obs import Observability


class SequentialAdapter(SimulatorAdapter):
    """Adapter over the MPI-style sequential backend (:class:`Compass`)."""

    backend = "sequential"
    supports_simulated_faults = True
    _sim_cls: type = Compass

    def __init__(self, obs: Observability | None = None) -> None:
        self._obs_arg = obs
        self._sim: Any = None

    @classmethod
    def wrap(cls, sim: Any) -> "SequentialAdapter":
        """Adopt an already-built simulator instance."""
        adapter = cls(obs=None)
        adapter._sim = sim
        return adapter

    # -- lifecycle ---------------------------------------------------------

    def prepare(self, network: Any, layout: ExecLayout) -> "SequentialAdapter":
        self._sim = self._sim_cls(
            network,
            layout.compass_config(),
            partition=layout.partition,
            sanitize=layout.sanitize,
            obs=self._obs_arg,
        )
        return self

    def step(self) -> Any:
        return self._sim.step()

    def collect(self) -> RunResult:
        return RunResult(
            metrics=self._sim.metrics,
            n_neurons=self._sim.network.n_neurons,
            spikes=self._sim.recorder,
        )

    # -- checkpoint surface ------------------------------------------------

    def capture(self) -> dict[str, Any]:
        return ckpt.capture_state(self._sim)

    def restore(self, state: dict[str, Any]) -> None:
        ckpt.restore_state(self._sim, state)

    def state_nbytes(self) -> int:
        return ckpt.state_nbytes(self._sim)

    # -- external input ------------------------------------------------------

    def inject(self, gid: int, axon: int, tick: int) -> None:
        self._sim.inject(gid, axon, tick)

    def attach_schedule(self, triples) -> None:
        self._sim.attach_schedule(triples)

    # -- observability -------------------------------------------------------

    def adopt_obs(self, obs: Observability) -> None:
        self._sim.adopt_obs(obs)

    # -- contract attributes -------------------------------------------------

    @property
    def tick(self) -> int:
        return self._sim.tick

    @property
    def metrics(self) -> RunMetrics:
        return self._sim.metrics

    @metrics.setter
    def metrics(self, value: RunMetrics) -> None:
        self._sim.metrics = value

    @property
    def recorder(self) -> SpikeRecorder | None:
        return self._sim.recorder

    @recorder.setter
    def recorder(self, value: SpikeRecorder | None) -> None:
        self._sim.recorder = value

    @property
    def network(self) -> Any:
        return self._sim.network

    @property
    def config(self) -> CompassConfig:
        return self._sim.config

    @property
    def obs(self) -> Observability:
        return self._sim.obs

    @property
    def cluster(self) -> Any:
        return self._sim.cluster

    @property
    def sim(self) -> Any:
        """The wrapped simulator (back-compat escape hatch)."""
        return self._sim

    def __getattr__(self, name: str) -> Any:
        # Fallback for pre-adapter call sites (e.g. ``.ranks``,
        # ``.race_report``, ``.detector``).  Only reached when normal
        # attribute lookup fails, so the contract surface stays primary.
        sim = object.__getattribute__(self, "_sim")
        if sim is None:
            raise AttributeError(name)
        return getattr(sim, name)


class PgasAdapter(SequentialAdapter):
    """Adapter over the one-sided PGAS backend (:class:`PgasCompass`)."""

    backend = "pgas"
    supports_simulated_faults = False
    _sim_cls = PgasCompass


register_backend("sequential", SequentialAdapter)
register_backend("mpi", SequentialAdapter)
register_backend("pgas", PgasAdapter)
