"""repro.exec — the unified execution backend layer.

One adapter contract (:class:`SimulatorAdapter`) over every backend:
the sequential MPI-style simulator, the one-sided PGAS simulator, and
the host-parallel process pool that runs simulated ranks on actual
cores with shared-memory spike windows.  See docs/execution.md.

    from repro.exec import make_adapter, ExecLayout

    adapter = make_adapter("pool", workers=4)
    result = adapter.prepare(network, ExecLayout(n_processes=8)).run(100)
    adapter.teardown()
"""

from repro.exec.adapter import (
    ExecLayout,
    SetupCostModel,
    SimulatorAdapter,
    as_adapter,
    backend_names,
    make_adapter,
)
from repro.exec.pool import PoolCluster, ProcessPoolAdapter
from repro.exec.sequential import PgasAdapter, SequentialAdapter
from repro.exec.windows import SpikeWindow
from repro.exec.worker import CRASH_EXIT_CODE, WorkerSpec

__all__ = [
    "CRASH_EXIT_CODE",
    "ExecLayout",
    "PgasAdapter",
    "PoolCluster",
    "ProcessPoolAdapter",
    "SequentialAdapter",
    "SetupCostModel",
    "SimulatorAdapter",
    "SpikeWindow",
    "WorkerSpec",
    "as_adapter",
    "backend_names",
    "make_adapter",
]
