"""Shared-memory ring-buffer spike windows for the host-parallel pool.

The pool's PGAS flavor mirrors the paper's one-sided design (§VII) on
real hardware: every host worker owns one globally addressable window
backed by :class:`multiprocessing.shared_memory.SharedMemory`, and any
worker may *put* an encoded spike batch directly into a remote window —
no pickling through a queue, no receive-side matching.

Window layout (all offsets byte offsets into the segment):

    [record][record]...   a ring of variable-length records

    record := header (16 B) + payload (``nbytes`` B, wire-format spikes)
    header := <i4 src_rank> <i4 dest_rank> <i4 nbytes> <i4 pad=0>

Positions are *monotonic* 64-bit byte counters in a shared array
(``[write_pos, read_pos]``); the ring offset of a counter is
``counter % capacity`` and records wrap around the segment edge.  The
unread span is ``write_pos - read_pos``; a put that would push it past
``capacity`` raises :class:`ExecError` (window overflow — raise
``window_bytes`` in the layout) instead of silently corrupting spikes.

Concurrency contract: many writers, one reader (the owning worker).
Writers serialise on the window lock to reserve space and bump
``write_pos``; the reader drains ``[read_pos, write_pos)`` outside the
lock (writers never overwrite the unread span) and bumps ``read_pos``
under it.  The deterministic tick barrier separates the write epoch
from the read epoch, so record order inside a window is arbitrary —
safe because spike delivery is a commutative bit-OR (§VII-A).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ExecError

_HEADER = struct.Struct("<iiii")
HEADER_BYTES = _HEADER.size


def record_nbytes(payload_len: int) -> int:
    """Total ring bytes one record of ``payload_len`` payload occupies."""
    return HEADER_BYTES + payload_len


@dataclass
class SpikeWindow:
    """One worker's shared spike window (descriptor is spawn-picklable).

    Built parent-side with :meth:`create`; workers call :meth:`attach`
    once after spawn.  The parent keeps the created handle and calls
    :meth:`unlink` at teardown.
    """

    name: str
    capacity: int
    #: Shared ``[write_pos, read_pos]`` monotonic byte counters.
    positions: Any
    lock: Any
    _shm: Any = field(default=None, repr=False)

    @classmethod
    def create(cls, ctx: Any, owner: int, capacity: int) -> "SpikeWindow":
        """Allocate the segment and control state (parent side)."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=capacity)
        win = cls(
            name=shm.name,
            capacity=capacity,
            positions=ctx.Array("q", [0, 0], lock=False),
            lock=ctx.Lock(),
        )
        win._shm = shm
        return win

    def attach(self) -> None:
        """Map the segment in this process (worker side)."""
        if self._shm is not None:
            return
        from multiprocessing import shared_memory

        try:
            # ``track=False`` (3.13+) keeps the resource tracker from
            # unlinking the parent-owned segment when a worker exits.
            # Older interpreters share one tracker across the spawn tree,
            # so the worker's attach registration is a harmless no-op and
            # the parent's unlink stays the single point of release.
            self._shm = shared_memory.SharedMemory(name=self.name, track=False)
        except TypeError:
            self._shm = shared_memory.SharedMemory(name=self.name)

    # -- ring arithmetic ----------------------------------------------------

    def _copy_in(self, pos: int, data: bytes) -> None:
        off = pos % self.capacity
        end = off + len(data)
        buf = self._shm.buf
        if end <= self.capacity:
            buf[off:end] = data
        else:
            first = self.capacity - off
            buf[off:] = data[:first]
            buf[: end - self.capacity] = data[first:]

    def _copy_out(self, pos: int, n: int) -> bytes:
        off = pos % self.capacity
        end = off + n
        buf = self._shm.buf
        if end <= self.capacity:
            return bytes(buf[off:end])
        first = self.capacity - off
        return bytes(buf[off:]) + bytes(buf[: end - self.capacity])

    # -- the one-sided operations --------------------------------------------

    def put(self, src_rank: int, dest_rank: int, payload: bytes) -> None:
        """One-sided insertion of an encoded spike batch (any process)."""
        rec = _HEADER.pack(src_rank, dest_rank, len(payload), 0) + payload
        if len(rec) > self.capacity:
            raise ExecError(
                f"spike batch of {len(payload)} B cannot fit a "
                f"{self.capacity} B window; raise window_bytes"
            )
        with self.lock:
            write_pos, read_pos = self.positions[0], self.positions[1]
            if write_pos - read_pos + len(rec) > self.capacity:
                raise ExecError(
                    f"spike window overflow: {write_pos - read_pos} B unread "
                    f"+ {len(rec)} B record exceeds the {self.capacity} B "
                    "window; raise window_bytes"
                )
            self._copy_in(write_pos, rec)
            self.positions[0] = write_pos + len(rec)

    def drain(self) -> list[tuple[int, int, bytes]]:
        """Drain every unread record (owner only); returns (src, dest, payload)."""
        with self.lock:
            write_pos = self.positions[0]
        read_pos = self.positions[1]
        out: list[tuple[int, int, bytes]] = []
        pos = read_pos
        while pos < write_pos:
            src, dest, nbytes, _pad = _HEADER.unpack(
                self._copy_out(pos, HEADER_BYTES)
            )
            pos += HEADER_BYTES
            out.append((src, dest, self._copy_out(pos, nbytes)))
            pos += nbytes
        with self.lock:
            self.positions[1] = pos
        return out

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Free the segment (parent side, after all workers closed it)."""
        from multiprocessing import shared_memory

        if self._shm is None:
            try:
                self._shm = shared_memory.SharedMemory(name=self.name)
            except FileNotFoundError:
                return
        shm = self._shm
        self._shm = None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __getstate__(self) -> dict:
        # The mapped segment never crosses a process boundary; workers
        # re-attach by name.
        state = self.__dict__.copy()
        state["_shm"] = None
        return state
