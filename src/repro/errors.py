"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch package-level failures without
masking programming errors (``TypeError``, ``KeyError`` from genuine bugs
still propagate).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class WiringError(ReproError):
    """A neuron→axon connection request cannot be realised.

    Raised by the compiler when a target core has no free axons left, or
    when a connection names a core/axon outside the network.  The paper's
    IPFP normalisation step (§IV, §V-C) exists precisely to guarantee this
    is never raised for balanced models.
    """


class CommunicationError(ReproError):
    """The simulated communication layer was used incorrectly.

    Examples: receiving with no matching message, mismatched collective
    participation, or a one-sided put outside the registered window.
    """


class CompilationError(ReproError):
    """The Parallel Compass Compiler could not compile a CoreObject."""


class CheckpointError(ReproError):
    """A checkpoint could not be saved or restored consistently."""


class FailureDetectedError(ReproError):
    """A *simulated hardware failure* was detected, not a programming error.

    Raised by the virtual cluster when an injected fault
    (:mod:`repro.resilience.faults`) manifests: a crashed rank missing the
    tick collective, a message the Reduce-Scatter promised that never
    arrived, or a payload whose checksum no longer matches.  The recovery
    driver (:class:`repro.resilience.recovery.ResilientRunner`) catches
    this hierarchy and rolls back to the last coordinated checkpoint;
    anything else propagating out of a step is a genuine bug.
    """


class RankFailureError(FailureDetectedError):
    """One or more simulated ranks crashed and missed a phase deadline."""

    def __init__(self, message: str, ranks: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.ranks = tuple(ranks)


class WorkerCrashError(FailureDetectedError):
    """A *host* worker process of a :class:`~repro.exec` pool died.

    The process-pool executor maps simulated ranks onto host worker
    processes; when one exits abnormally (segfault, ``os._exit``, OOM
    kill) every simulated rank it owned is gone at once.  The error
    carries those simulated ranks so :class:`ResilientRunner` can treat
    a host crash exactly like a simulated rank crash: roll back to the
    last coordinated checkpoint and restart.
    """

    def __init__(self, message: str, ranks: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.ranks = tuple(ranks)


class MessageLossError(FailureDetectedError):
    """A message announced by the count collective was never delivered."""


class MessageCorruptionError(FailureDetectedError):
    """A received payload failed its end-to-end checksum."""


class RecoveryExhaustedError(ReproError):
    """Recovery retries exceeded the policy's bound without progress."""


class AdmissionError(ReproError):
    """A job could not be admitted to the simulation service queue.

    Raised by :class:`repro.serve.queue.FairShareQueue` at submission
    time.  Admission failures are *load* conditions, not programming
    errors: the caller (load generator, CLI, or a client loop) records
    the rejection and moves on; the service itself never sees the job.
    """


class QueueFullError(AdmissionError):
    """The bounded service queue is at capacity (global backpressure)."""


class TenantQuotaError(AdmissionError):
    """A tenant exceeded its per-tenant admission quota."""


class ShardError(ReproError):
    """A sharded-fleet routing or topology operation failed.

    Raised by :mod:`repro.shard` for fleet-level conditions that have no
    single-cluster analogue: looking up a tenant the ring has never
    routed, or offering a job when every candidate shard is saturated.
    """


class UnknownTenantError(ShardError):
    """A tenant was looked up that this fleet has never routed.

    ``ShardRouter.shard_of`` answers "where do this tenant's jobs live?"
    only for tenants that have actually been admitted; asking about an
    unseen tenant is a caller bug or a stale handle, not a load
    condition, so it raises instead of guessing from the ring.
    """


class FleetFullError(ShardError, AdmissionError):
    """Every candidate shard for a tenant is at queue capacity.

    A *load* condition like the other :class:`AdmissionError` subclasses
    (so load generators can catch the shared base), but raised by the
    fleet front-end before the job reaches any shard queue: the home
    shard and all spill-over candidates are saturated.
    """


class CheckInputError(ReproError):
    """A checker input path is missing, unreadable, or not analyzable.

    Raised by :mod:`repro.check` when a lint/flow target does not exist,
    is not a python file or directory, cannot be decoded as UTF-8, or a
    flow baseline file is missing/malformed.  Always a *usage* error
    (CLI exit code 2) naming the offending path — never a finding.
    """


class ExecError(ReproError):
    """An execution-backend (adapter) request cannot be honoured.

    Raised by :mod:`repro.exec` for usage errors at the adapter layer:
    an unknown backend name, a feature combination a backend does not
    support (e.g. the process pool with host profiling or simulated
    fault schedules), or a shared-memory spike window too small for a
    tick's traffic.  Always a caller/usage error, never a simulated
    fault — contrast :class:`WorkerCrashError`.
    """


class AnalysisError(ReproError):
    """A trace-analytics input is missing, empty, or malformed.

    Raised by :mod:`repro.obs.analysis` when an event log, bench-result
    file, or bench-history file cannot be analyzed — a usage error (CLI
    exit code 2), distinct from a *failing* gate (exit code 1).
    """
