"""Sharded multi-cluster serving: the fleet tier above :mod:`repro.serve`.

One :class:`~repro.shard.router.ShardRouter` partitions tenants across N
independent simulated clusters (each a
:class:`~repro.serve.server.SimServer`) with consistent-hash routing,
bounded spill-over from hot shards, per-shard watermark autoscaling, and
hierarchical cross-shard SLO aggregation — all on one shared simulated
clock, byte-identical across runs and rank layouts.

See ``docs/serving.md`` ("Sharded fleet") for the full semantics.
"""

from repro.shard.autoscale import AutoscalePolicy, Autoscaler, ScaleDecision
from repro.shard.fleet import (
    FLEET_SCHEMA,
    FleetReport,
    ShardAccumulator,
    ShardStats,
    build_fleet_report,
)
from repro.shard.loadgen import FleetLoadStats, fleet_open_loop
from repro.shard.ring import HashRing, RingConfig, RouteDecision, stable_hash64
from repro.shard.router import FleetConfig, ShardRouter

__all__ = [
    "AutoscalePolicy",
    "Autoscaler",
    "FLEET_SCHEMA",
    "FleetConfig",
    "FleetLoadStats",
    "FleetReport",
    "HashRing",
    "RingConfig",
    "RouteDecision",
    "ScaleDecision",
    "ShardAccumulator",
    "ShardRouter",
    "ShardStats",
    "build_fleet_report",
    "fleet_open_loop",
    "stable_hash64",
]
