"""Per-shard worker-pool autoscaling on the simulated clock.

Each shard's :class:`Autoscaler` is evaluated at fixed simulated-time
boundaries (``interval_us``) by the fleet router.  The decision rule is
a pure function of (queue depth, live worker count, cooldown counter) —
no host clocks, no randomness — so the full decision sequence is
byte-identical across runs and rank layouts.

Hysteresis comes from two places: the gap between the grow and shrink
watermarks (``high_depth_per_worker`` > ``low_depth_per_worker``), and a
``cooldown_intervals`` quiet period after every action, so a burst
cannot make the pool oscillate every boundary.

Shrinking never interrupts work: only an *idle* worker is retired
(:meth:`repro.serve.server.SimServer.remove_worker` refuses otherwise),
and a refused shrink is simply retried at a later boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.server import SimServer
from repro.util.validation import check_positive, check_range, require


@dataclass(frozen=True)
class AutoscalePolicy:
    """Validated watermark policy for one shard's worker pool.

    Watermarks are queue depth *per live worker*: with
    ``high_depth_per_worker=4`` a 2-worker shard grows once more than 8
    jobs are queued, and with ``low_depth_per_worker=1`` it shrinks once
    fewer than 2 are.
    """

    interval_us: float = 50_000.0
    high_depth_per_worker: float = 4.0
    low_depth_per_worker: float = 1.0
    min_workers: int = 1
    max_workers: int = 8
    cooldown_intervals: int = 2

    def __post_init__(self) -> None:
        check_positive("interval_us", self.interval_us)
        check_positive("min_workers", self.min_workers)
        require(
            self.max_workers >= self.min_workers,
            f"max_workers={self.max_workers} below min_workers={self.min_workers}",
        )
        check_range("low_depth_per_worker", self.low_depth_per_worker, lo=0.0)
        require(
            self.high_depth_per_worker > self.low_depth_per_worker,
            "high_depth_per_worker must exceed low_depth_per_worker "
            f"({self.high_depth_per_worker!r} <= {self.low_depth_per_worker!r})",
        )
        check_range("cooldown_intervals", self.cooldown_intervals, lo=0)


@dataclass(frozen=True)
class ScaleDecision:
    """One grow/shrink action, recorded only when the pool changed."""

    t_us: float
    shard: int
    action: str  # "grow" | "shrink"
    depth: int
    workers_before: int
    workers_after: int

    def digest_token(self) -> str:
        """Stable text form folded into the fleet routing digest."""
        return (
            f"scale:{self.t_us!r}:{self.shard}:{self.action}:"
            f"{self.depth}:{self.workers_before}->{self.workers_after};"
        )


class Autoscaler:
    """Watermark-driven worker-pool controller for one shard."""

    def __init__(self, policy: AutoscalePolicy, server: SimServer, shard: int) -> None:
        self.policy = policy
        self.server = server
        self.shard = shard
        self._cooldown = 0

    def evaluate(self, t_us: float) -> ScaleDecision | None:
        """Evaluate the watermarks at boundary ``t_us``.

        Returns the action taken, or None when the pool is left alone
        (in band, cooling down, at a bound, or no idle worker to
        retire).  Grows and shrinks move one worker per boundary — the
        step size is the cooldown's counterpart, bounding how fast the
        pool can ramp.
        """
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        policy = self.policy
        depth = len(self.server.queue)
        workers = self.server.workers
        if depth > policy.high_depth_per_worker * workers and workers < policy.max_workers:
            self.server.add_worker()
            self._cooldown = policy.cooldown_intervals
            return ScaleDecision(
                t_us=t_us,
                shard=self.shard,
                action="grow",
                depth=depth,
                workers_before=workers,
                workers_after=workers + 1,
            )
        if depth < policy.low_depth_per_worker * workers and workers > policy.min_workers:
            if not self.server.remove_worker():
                return None  # every worker busy; retry at a later boundary
            self._cooldown = policy.cooldown_intervals
            return ScaleDecision(
                t_us=t_us,
                shard=self.shard,
                action="shrink",
                depth=depth,
                workers_before=workers,
                workers_after=workers - 1,
            )
        return None
