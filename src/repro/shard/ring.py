"""Consistent-hash tenant routing: the shard ring.

Tenants are placed on a 64-bit hash ring populated with ``vnodes``
virtual nodes per shard; a tenant's *home* shard is the owner of the
first virtual node at or clockwise-after the tenant's position.  Virtual
nodes smooth the per-shard key share (the classic consistent-hashing
construction), and the walk order around the ring doubles as each
tenant's deterministic *preference list* for spill-over.

Everything here must be byte-identical across processes and hosts:

- Positions come from SHA-256 (:func:`stable_hash64`), never the builtin
  ``hash()`` — that one is salted per interpreter process.
- Ring points sort by ``(position, shard, vnode)``, so even a full
  64-bit position collision breaks ties explicitly.
- Spill-over picks the least-loaded candidate from the preference list,
  breaking load ties by preference order — the home shard, always first
  in the list, wins a full tie.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass

from repro.util.validation import check_positive, check_range, require


def stable_hash64(key: str) -> int:
    """64-bit ring position of ``key``: first 8 bytes of its SHA-256.

    Python's builtin ``hash()`` is randomised per process
    (``PYTHONHASHSEED``), so ring layouts built from it would differ
    between runs.  A content-defined digest keeps tenant→shard routing
    identical across runs, hosts, and interpreter restarts.
    """
    return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


@dataclass(frozen=True)
class RingConfig:
    """Validated ring topology and spill-over policy.

    ``spill`` is the number of clockwise neighbor shards a hot home
    shard may overflow onto (0 disables spill-over).  ``hot_depth`` is
    the queue depth at which the home shard counts as hot.
    """

    n_shards: int = 4
    vnodes: int = 64
    spill: int = 1
    hot_depth: int = 32

    def __post_init__(self) -> None:
        check_positive("n_shards", self.n_shards)
        check_positive("vnodes", self.vnodes)
        check_range("spill", self.spill, lo=0, hi=self.n_shards - 1)
        check_positive("hot_depth", self.hot_depth)


@dataclass(frozen=True)
class RouteDecision:
    """One routing decision: where a tenant lives vs. where the job went."""

    tenant: str
    home: int
    target: int

    @property
    def spilled(self) -> bool:
        return self.target != self.home


class HashRing:
    """Consistent-hash ring mapping tenant ids to shards."""

    def __init__(self, config: RingConfig | None = None) -> None:
        self.config = config or RingConfig()
        points: list[tuple[int, int, int]] = []
        for shard in range(self.config.n_shards):
            for vnode in range(self.config.vnodes):
                points.append((stable_hash64(f"shard-{shard}/vnode-{vnode}"), shard, vnode))
        # Sorting the full triple makes position collisions break by
        # (shard, vnode) explicitly rather than by insertion order.
        points.sort()
        self._points = points
        self._positions = [position for position, _, _ in points]

    def lookup(self, tenant: str) -> int:
        """Home shard of ``tenant``: owner of the next point clockwise."""
        index = bisect_right(self._positions, stable_hash64(tenant))
        return self._points[index % len(self._points)][1]

    def preference(self, tenant: str, k: int) -> list[int]:
        """First ``k`` distinct shards walking clockwise from ``tenant``.

        Element 0 is the home shard; the rest are its spill-over
        candidates in deterministic ring order.  ``k`` is clamped to the
        shard count.
        """
        check_positive("k", k)
        k = min(k, self.config.n_shards)
        start = bisect_right(self._positions, stable_hash64(tenant))
        chosen: list[int] = []
        for step in range(len(self._points)):
            shard = self._points[(start + step) % len(self._points)][1]
            if shard not in chosen:
                chosen.append(shard)
                if len(chosen) == k:
                    break
        return chosen

    def route(self, tenant: str, depths: list[int]) -> RouteDecision:
        """Route one job given per-shard queue ``depths``.

        The job stays home while the home queue is below ``hot_depth``;
        past that it goes to the least-loaded of home + ``spill``
        clockwise neighbors, ties broken by preference order (so the
        home shard keeps the job on a full tie — spilling is never
        gratuitous).
        """
        require(
            len(depths) == self.config.n_shards,
            f"depths has {len(depths)} entries for {self.config.n_shards} shards",
        )
        home = self.lookup(tenant)
        if self.config.spill == 0 or depths[home] < self.config.hot_depth:
            return RouteDecision(tenant=tenant, home=home, target=home)
        candidates = self.preference(tenant, self.config.spill + 1)
        best = min(range(len(candidates)), key=lambda i: (depths[candidates[i]], i))
        return RouteDecision(tenant=tenant, home=home, target=candidates[best])
