"""Hierarchical cross-shard SLO aggregation: the fleet report.

The reduction is intra-shard first, inter-shard second — the shape the
hierarchical-aggregation literature (arXiv:2205.07125) uses to avoid a
flat all-to-one hot spot.  Each shard accumulates its own latencies
*online*, in completion order, via a server completion hook
(:class:`ShardAccumulator`); the fleet then merges the pre-sorted
per-shard lists with ``heapq.merge`` (O(N log S), never a flat
O(N log N) re-sort) and reads nearest-rank percentiles straight off the
merged sequence.

Because accumulation happens in hooks, shard servers can run with
``ServeConfig(keep_records=False)``: a 10M-job fleet run keeps one float
per completed job, not one :class:`~repro.serve.jobs.Job` object — the
difference between megabytes and gigabytes at headline-bench scale.

Everything in :class:`FleetReport` is derived from simulated-clock
quantities and partition-invariant run costs, so a fixed-seed fleet run
serializes byte-identically across repeated runs and rank layouts.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from heapq import merge

from repro.errors import ConfigurationError
from repro.perf.report import format_table
from repro.serve.jobs import REJECTED, Job
from repro.util.stats import max_over_mean, percentile_sorted

#: Schema tag for serialized fleet reports (``repro shard report``).
#: v2 added the live-telemetry summary (windows/rollups/alerts).
FLEET_SCHEMA = 2


class ShardAccumulator:
    """Online per-shard SLO accounting fed by a server completion hook.

    Attach :meth:`observe` with
    :meth:`repro.serve.server.SimServer.add_completion_hook`; it fires
    for every terminal job (done or rejected) in completion order, which
    is part of the deterministic schedule.
    """

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.latencies: list[float] = []
        self.terminal = 0
        self.completed = 0
        self.rejected = 0
        self.deadline_missed = 0
        self.good = 0
        self.first_submit_us = math.inf
        self.last_finish_us = 0.0

    def observe(self, job: Job) -> None:
        self.terminal += 1
        missed = job.deadline_missed
        if missed:
            self.deadline_missed += 1
        if job.status == REJECTED:
            self.rejected += 1
            return
        self.completed += 1
        self.latencies.append(job.latency_us)
        self.first_submit_us = min(self.first_submit_us, job.submit_us)
        self.last_finish_us = max(self.last_finish_us, job.finish_us)
        if not missed:
            self.good += 1

    def sorted_latencies(self) -> list[float]:
        """This shard's latencies sorted — the intra-shard reduction."""
        return sorted(self.latencies)

    @property
    def makespan_s(self) -> float:
        if not self.completed:
            return 0.0
        return (self.last_finish_us - self.first_submit_us) / 1e6


@dataclass
class ShardStats:
    """Per-shard slice of the fleet report."""

    shard: int
    routed: int = 0
    completed: int = 0
    rejected: int = 0
    deadline_missed: int = 0
    batches: int = 0
    mean_batch_size: float = 0.0
    retries: int = 0
    workers: int = 0
    scale_events: int = 0
    p50_us: float = 0.0
    p95_us: float = 0.0
    p99_us: float = 0.0
    goodput_per_s: float = 0.0
    peak_state_nbytes: int = 0


@dataclass
class FleetReport:
    """Fleet-wide SLO accounting over one sharded run."""

    shards: list[ShardStats] = field(default_factory=list)
    jobs_offered: int = 0
    jobs_routed: int = 0
    spilled: int = 0
    fleet_rejected: int = 0
    jobs_completed: int = 0
    jobs_rejected: int = 0
    deadline_missed: int = 0
    batches: int = 0
    retries: int = 0
    scale_events: int = 0
    p50_us: float = 0.0
    p95_us: float = 0.0
    p99_us: float = 0.0
    goodput_per_s: float = 0.0
    makespan_s: float = 0.0
    miss_rate: float = 0.0
    #: Max/mean of per-shard completed-job counts (1.0 = perfectly even).
    imbalance: float = 1.0
    peak_state_nbytes: int = 0
    routing_digest: str = ""
    #: Live-telemetry summary (zero when the run had no telemetry).
    windows: int = 0
    rollup_records: int = 0
    alerts_fired: int = 0
    alerts_resolved: int = 0

    def format(self) -> str:
        """Human-readable report (stable layout; byte-identical per run)."""
        lines = [
            "fleet report",
            f"  shards: {len(self.shards)}  "
            f"imbalance(max/mean completed)={self.imbalance:.3f}",
            f"  jobs: offered={self.jobs_offered} routed={self.jobs_routed} "
            f"spilled={self.spilled} fleet_rejected={self.fleet_rejected}",
            f"  terminal: completed={self.jobs_completed} "
            f"rejected={self.jobs_rejected}",
            f"  batches: {self.batches}, retries={self.retries}, "
            f"scale_events={self.scale_events}",
            f"  latency: p50={self.p50_us:.1f}us p95={self.p95_us:.1f}us "
            f"p99={self.p99_us:.1f}us",
            f"  slo: deadline_missed={self.deadline_missed} "
            f"miss_rate={self.miss_rate:.4f}",
            f"  goodput: {self.goodput_per_s:.3f} jobs/s over "
            f"{self.makespan_s:.6f} simulated s",
            f"  peak_state_nbytes: {self.peak_state_nbytes}",
            f"  routing_digest: {self.routing_digest}",
        ]
        if self.windows:
            lines.append(
                f"  telemetry: windows={self.windows} "
                f"rollups={self.rollup_records} "
                f"alerts_fired={self.alerts_fired} "
                f"alerts_resolved={self.alerts_resolved}"
            )
        lines.append("")
        rows = [
            (
                s.shard, s.routed, s.completed, s.rejected, s.deadline_missed,
                s.workers, s.scale_events, f"{s.p50_us:.1f}", f"{s.p99_us:.1f}",
                f"{s.goodput_per_s:.3f}",
            )
            for s in self.shards
        ]
        lines.append(
            format_table(
                ("shard", "routed", "completed", "rejected", "missed",
                 "workers", "scales", "p50_us", "p99_us", "goodput/s"),
                rows,
            )
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Stable JSON form (sorted keys) for ``repro shard report``."""
        payload = {
            "schema": FLEET_SCHEMA,
            "jobs_offered": self.jobs_offered,
            "jobs_routed": self.jobs_routed,
            "spilled": self.spilled,
            "fleet_rejected": self.fleet_rejected,
            "jobs_completed": self.jobs_completed,
            "jobs_rejected": self.jobs_rejected,
            "deadline_missed": self.deadline_missed,
            "batches": self.batches,
            "retries": self.retries,
            "scale_events": self.scale_events,
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "goodput_per_s": self.goodput_per_s,
            "makespan_s": self.makespan_s,
            "miss_rate": self.miss_rate,
            "imbalance": self.imbalance,
            "peak_state_nbytes": self.peak_state_nbytes,
            "routing_digest": self.routing_digest,
            "windows": self.windows,
            "rollup_records": self.rollup_records,
            "alerts_fired": self.alerts_fired,
            "alerts_resolved": self.alerts_resolved,
            "shards": [
                {
                    "shard": s.shard,
                    "routed": s.routed,
                    "completed": s.completed,
                    "rejected": s.rejected,
                    "deadline_missed": s.deadline_missed,
                    "batches": s.batches,
                    "mean_batch_size": s.mean_batch_size,
                    "retries": s.retries,
                    "workers": s.workers,
                    "scale_events": s.scale_events,
                    "p50_us": s.p50_us,
                    "p95_us": s.p95_us,
                    "p99_us": s.p99_us,
                    "goodput_per_s": s.goodput_per_s,
                    "peak_state_nbytes": s.peak_state_nbytes,
                }
                for s in self.shards
            ],
        }
        return json.dumps(payload, sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FleetReport":
        data = json.loads(text)
        if data.get("schema") != FLEET_SCHEMA:
            raise ConfigurationError(
                f"unsupported fleet report schema {data.get('schema')!r}"
            )
        shards = [
            ShardStats(
                shard=s["shard"],
                routed=s["routed"],
                completed=s["completed"],
                rejected=s["rejected"],
                deadline_missed=s["deadline_missed"],
                batches=s["batches"],
                mean_batch_size=s["mean_batch_size"],
                retries=s["retries"],
                workers=s["workers"],
                scale_events=s["scale_events"],
                p50_us=s["p50_us"],
                p95_us=s["p95_us"],
                p99_us=s["p99_us"],
                goodput_per_s=s["goodput_per_s"],
                peak_state_nbytes=s["peak_state_nbytes"],
            )
            for s in data["shards"]
        ]
        return cls(
            shards=shards,
            jobs_offered=data["jobs_offered"],
            jobs_routed=data["jobs_routed"],
            spilled=data["spilled"],
            fleet_rejected=data["fleet_rejected"],
            jobs_completed=data["jobs_completed"],
            jobs_rejected=data["jobs_rejected"],
            deadline_missed=data["deadline_missed"],
            batches=data["batches"],
            retries=data["retries"],
            scale_events=data["scale_events"],
            p50_us=data["p50_us"],
            p95_us=data["p95_us"],
            p99_us=data["p99_us"],
            goodput_per_s=data["goodput_per_s"],
            makespan_s=data["makespan_s"],
            miss_rate=data["miss_rate"],
            imbalance=data["imbalance"],
            peak_state_nbytes=data["peak_state_nbytes"],
            routing_digest=data["routing_digest"],
            windows=data["windows"],
            rollup_records=data["rollup_records"],
            alerts_fired=data["alerts_fired"],
            alerts_resolved=data["alerts_resolved"],
        )


def build_fleet_report(router) -> FleetReport:
    """Reduce a drained :class:`~repro.shard.router.ShardRouter` to a report.

    Per-shard stats come from the accumulators (intra-shard reduction);
    the aggregate percentiles come from merging the per-shard sorted
    latency lists (inter-shard reduction).
    """
    report = FleetReport(
        jobs_offered=router.jobs_routed + router.fleet_rejected,
        jobs_routed=router.jobs_routed,
        spilled=router.spilled,
        fleet_rejected=router.fleet_rejected,
        scale_events=len(router.scale_log),
        routing_digest=router.routing_digest,
    )
    per_shard_sorted: list[list[float]] = []
    scale_counts = [0] * len(router.servers)
    for decision in router.scale_log:
        scale_counts[decision.shard] += 1
    first_submit = math.inf
    last_finish = 0.0
    good = 0
    for accumulator in router.accumulators:
        shard = accumulator.shard
        server = router.servers[shard]
        ordered = accumulator.sorted_latencies()
        per_shard_sorted.append(ordered)
        stats = ShardStats(
            shard=shard,
            routed=accumulator.terminal,
            completed=accumulator.completed,
            rejected=accumulator.rejected,
            deadline_missed=accumulator.deadline_missed,
            batches=server.n_batches,
            retries=server.retries_total,
            workers=server.workers,
            scale_events=scale_counts[shard],
            peak_state_nbytes=server.peak_state_nbytes,
        )
        if server.n_batches:
            stats.mean_batch_size = server.batch_jobs_total / server.n_batches
        if ordered:
            stats.p50_us = percentile_sorted(ordered, 50.0)
            stats.p95_us = percentile_sorted(ordered, 95.0)
            stats.p99_us = percentile_sorted(ordered, 99.0)
        if accumulator.makespan_s > 0:
            stats.goodput_per_s = accumulator.good / accumulator.makespan_s
        report.shards.append(stats)
        report.jobs_completed += accumulator.completed
        report.jobs_rejected += accumulator.rejected
        report.deadline_missed += accumulator.deadline_missed
        report.batches += server.n_batches
        report.retries += server.retries_total
        report.peak_state_nbytes += server.peak_state_nbytes
        good += accumulator.good
        first_submit = min(first_submit, accumulator.first_submit_us)
        last_finish = max(last_finish, accumulator.last_finish_us)
    merged = list(merge(*per_shard_sorted))
    if merged:
        report.p50_us = percentile_sorted(merged, 50.0)
        report.p95_us = percentile_sorted(merged, 95.0)
        report.p99_us = percentile_sorted(merged, 99.0)
        report.makespan_s = (last_finish - first_submit) / 1e6
    if report.makespan_s > 0:
        report.goodput_per_s = good / report.makespan_s
    terminal = report.jobs_completed + report.jobs_rejected
    if terminal:
        report.miss_rate = report.deadline_missed / terminal
    completed_counts = [s.completed for s in report.shards]
    if any(completed_counts):
        report.imbalance = max_over_mean(completed_counts)
    telemetry = getattr(router, "telemetry", None)
    if telemetry is not None:
        report.windows = telemetry.windows_closed
        report.rollup_records = telemetry.records_emitted
        report.alerts_fired = telemetry.engine.fired
        report.alerts_resolved = telemetry.engine.resolved
    return report
