"""Fleet front-end: deterministic admission + routing over N clusters.

:class:`ShardRouter` owns one :class:`~repro.serve.server.SimServer` per
shard and drives them all as *sub-simulations of one shared simulated
clock*.  Arrivals must be offered in non-decreasing simulated time; the
router advances every shard to each arrival's timestamp before routing
it, so routing decisions always see the queue depths a real front-end
would see at that instant — and see them identically on every run.

Routing is two-level: the consistent-hash ring
(:class:`~repro.shard.ring.HashRing`) names the tenant's home shard and
its spill-over candidates; live queue depths pick among them.  When
every candidate is at queue capacity the job is rejected fleet-side
with :class:`~repro.errors.FleetFullError` before touching any shard
queue.

Every routing and autoscale decision is folded into a running SHA-256
(:attr:`ShardRouter.routing_digest`), giving a compact byte-identical
witness of the full decision sequence for determinism tests — the same
role the recovery digest plays in :mod:`repro.resilience`.

Fault injection composes per shard: ``FleetConfig.fault_shard`` names
the one shard whose server receives ``serve.fault_schedule``; every
other shard runs fault-free, mirroring a single cluster failing inside
a healthy fleet.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace

from repro.errors import FleetFullError, UnknownTenantError
from repro.obs import Observability
from repro.obs.live.context import TraceContext
from repro.obs.live.pipeline import LiveTelemetry, TelemetryConfig
from repro.serve.jobs import JobSpec
from repro.serve.server import ServeConfig, SimServer
from repro.shard.autoscale import AutoscalePolicy, Autoscaler, ScaleDecision
from repro.shard.fleet import ShardAccumulator
from repro.shard.ring import HashRing, RingConfig
from repro.util.validation import check_range, require


@dataclass(frozen=True)
class FleetConfig:
    """Validated fleet topology: ring + per-shard service template.

    Execution backend selection rides the :class:`ServeConfig` template:
    ``serve.backend`` (``mpi``/``pgas``/``pool``) and
    ``serve.pool_workers`` flow through :meth:`shard_serve_config` to
    every shard's server, which drives the chosen backend through the
    :mod:`repro.exec` adapter layer — the fleet never constructs a
    simulator directly.
    """

    shards: int = 4
    vnodes: int = 64
    spill: int = 1
    hot_depth: int = 32
    #: Template applied to every shard's server (fault_schedule is
    #: stripped for all shards except ``fault_shard``).
    serve: ServeConfig = field(default_factory=ServeConfig)
    autoscale: AutoscalePolicy | None = None
    #: Shard whose server arms ``serve.fault_schedule``; -1 = none.
    fault_shard: int = -1
    #: Streaming-telemetry configuration (rollup windows + SLO alerting);
    #: None keeps the fleet's completion hot path free of telemetry work.
    telemetry: TelemetryConfig | None = None

    def __post_init__(self) -> None:
        # shards/vnodes/spill/hot_depth are validated by RingConfig.
        self.ring_config()
        check_range("fault_shard", self.fault_shard, lo=-1, hi=self.shards - 1)
        require(
            self.serve.fault_schedule is None or self.fault_shard >= 0,
            "serve.fault_schedule is set but fault_shard is -1 "
            "(name the shard that should fail)",
        )

    def ring_config(self) -> RingConfig:
        return RingConfig(
            n_shards=self.shards,
            vnodes=self.vnodes,
            spill=self.spill,
            hot_depth=self.hot_depth,
        )

    def shard_serve_config(self, shard: int) -> ServeConfig:
        """Per-shard server config: the template minus foreign faults."""
        if self.serve.fault_schedule is None or shard == self.fault_shard:
            return self.serve
        return replace(self.serve, fault_schedule=None)


class ShardRouter:
    """Deterministic front-end router over N independent shard servers."""

    def __init__(
        self, config: FleetConfig | None = None, obs: Observability | None = None
    ) -> None:
        self.config = config or FleetConfig()
        self.obs = obs or Observability.off()
        self.ring = HashRing(self.config.ring_config())
        # Shard servers share the router's tracer (one causal event stream
        # for the whole fleet, each shard on its own track) but keep their
        # own metric registries — per-tenant instrument cells are keyed by
        # per-server tenant ids that would collide across shards.  With
        # tracing off they run fully detached, as before.
        self.servers = [
            SimServer(
                self.config.shard_serve_config(shard),
                obs=Observability(tracer=self.obs.tracer)
                if self.obs.tracing
                else None,
                rank=shard,
            )
            for shard in range(self.config.shards)
        ]
        self.accumulators = [
            ShardAccumulator(shard) for shard in range(self.config.shards)
        ]
        for shard, server in enumerate(self.servers):
            server.add_completion_hook(self.accumulators[shard].observe)
        self.telemetry: LiveTelemetry | None = None
        if self.config.telemetry is not None:
            self.telemetry = LiveTelemetry(
                self.config.telemetry, self.config.shards, tracer=self.obs.tracer
            )
            for shard, server in enumerate(self.servers):
                server.add_completion_hook(
                    lambda job, shard=shard: self.telemetry.observe(shard, job)
                )
        self.autoscalers: list[Autoscaler] | None = None
        self._next_scale_boundary = math.inf
        if self.config.autoscale is not None:
            self.autoscalers = [
                Autoscaler(self.config.autoscale, server, shard)
                for shard, server in enumerate(self.servers)
            ]
            self._next_scale_boundary = self.config.autoscale.interval_us
        self.scale_log: list[ScaleDecision] = []
        self.jobs_routed = 0
        self.routed = [0] * self.config.shards
        self.spilled = 0
        self.fleet_rejected = 0
        self._tenant_shard: dict[str, int] = {}
        self._clock_us = 0.0
        self._digest = hashlib.sha256()
        reg = self.obs.registry
        self._m_routed = reg.counter(
            "shard_jobs_routed_total", help="jobs routed, keyed by shard"
        )
        self._m_spill = reg.counter(
            "shard_spill_total", help="spill-overs, keyed by (hot) home shard"
        )
        self._m_fleet_rejected = reg.counter(
            "shard_fleet_rejected_total", help="fleet-level rejections (all candidates full)"
        )
        self._m_scale = reg.counter(
            "shard_scale_events_total", help="autoscale actions, keyed by shard"
        )
        self._g_depth = reg.gauge(
            "shard_queue_depth", help="queue depth at autoscale boundaries, keyed by shard"
        )
        self._g_workers = reg.gauge(
            "shard_workers", help="live worker-pool width, keyed by shard"
        )

    # -- routing --------------------------------------------------------------

    def submit(self, spec: JobSpec, at_us: float = 0.0) -> tuple[int, int]:
        """Route one arrival at simulated time ``at_us``.

        Returns ``(shard, job_id)``.  Arrivals must be offered in
        non-decreasing time order — the front-end is itself an event
        source on the shared clock, so out-of-order offers would mean
        routing against depths from the future.
        """
        check_range("at_us", at_us, lo=0.0)
        require(
            at_us >= self._clock_us,
            f"fleet arrivals must be offered in non-decreasing simulated "
            f"time order (got {at_us!r} after {self._clock_us!r})",
        )
        self._advance(at_us)
        depths = [len(server.queue) for server in self.servers]
        decision = self.ring.route(spec.tenant, depths)
        target = decision.target
        tracer = self.obs.tracer
        if depths[target] >= self.config.serve.queue_capacity:
            self.fleet_rejected += 1
            self._m_fleet_rejected.inc(rank=decision.home)
            self._digest.update(
                f"{at_us!r}:{spec.tenant}:{decision.home}:reject;".encode()
            )
            if tracer.enabled:
                tracer.instant(
                    "shard.reject",
                    rank=decision.home,
                    tick=-1,
                    ts_us=at_us,
                    cat="shard",
                    tenant=spec.tenant,
                )
            raise FleetFullError(
                f"all {1 + self.config.spill} candidate shard(s) for tenant "
                f"{spec.tenant!r} at queue capacity "
                f"({self.config.serve.queue_capacity})"
            )
        job_id = self.servers[target].submit(spec, at_us=at_us)
        self._tenant_shard[spec.tenant] = target
        self.jobs_routed += 1
        self.routed[target] += 1
        self._m_routed.inc(rank=target)
        self._digest.update(
            f"{at_us!r}:{spec.tenant}:{decision.home}:{target};".encode()
        )
        if decision.spilled:
            self.spilled += 1
            self._m_spill.inc(rank=decision.home)
            if tracer.enabled:
                tracer.instant(
                    "shard.spill",
                    rank=decision.home,
                    tick=-1,
                    ts_us=at_us,
                    cat="shard",
                    tenant=spec.tenant,
                    target=target,
                )
        if tracer.enabled:
            tracer.instant(
                "shard.route",
                rank=target,
                tick=-1,
                ts_us=at_us,
                cat="shard",
                tenant=spec.tenant,
                home=decision.home,
                job=job_id,
            )
            # Start the job's causal trace at the routing decision.  The
            # arrival event is still pending (processed on a later
            # _advance), so the shard server sees this context and chains
            # its queue/batch/run stages off the route span.
            root = TraceContext.root(spec.tenant, job_id, at_us)
            ctx = root.child("route")
            self.servers[target].jobs[job_id].trace = ctx
            tracer.complete(
                "job.route",
                rank=target,
                ts_us=at_us,
                cat="serve",
                tick=-1,
                job=job_id,
                tenant=spec.tenant,
                trace=ctx.trace_id,
                span=ctx.span_id,
                parent=ctx.parent_id,
                home=decision.home,
                target=target,
            )
            tracer.flow(
                "job", rank=target, ph="s", flow_id=ctx.trace_id,
                ts_us=at_us, cat="serve", tick=-1, job=job_id,
            )
        return target, job_id

    def shard_of(self, tenant: str) -> int:
        """Which shard holds ``tenant``'s jobs (must have been routed)."""
        try:
            return self._tenant_shard[tenant]
        except KeyError:
            raise UnknownTenantError(
                f"tenant {tenant!r} has never been routed by this fleet"
            ) from None

    # -- clock ----------------------------------------------------------------

    def _pending_boundary(self) -> float:
        """Next autoscale or telemetry boundary (``inf`` when neither)."""
        boundary = self._next_scale_boundary
        if self.telemetry is not None:
            boundary = min(boundary, self.telemetry.next_boundary_us)
        return boundary

    def _queue_depths(self) -> list[int]:
        return [len(server.queue) for server in self.servers]

    def _advance(self, t_us: float) -> None:
        """Advance every shard to ``t_us``, taking scheduled boundaries.

        Rollup windows are half-open ``[t0, t1)``: at a telemetry boundary
        the shards first run strictly *before* it, the window closes, and
        only then do events at exactly the boundary run — so a completion
        landing on a boundary is counted in the next window, identically
        on every run and rank layout.
        """
        while True:
            scale_b = self._next_scale_boundary
            tel_b = (
                self.telemetry.next_boundary_us
                if self.telemetry is not None
                else math.inf
            )
            boundary = min(scale_b, tel_b)
            if boundary > t_us:
                break
            for server in self.servers:
                server.run_before(boundary)
            if tel_b == boundary:
                self.telemetry.close_window(self._queue_depths())
            for server in self.servers:
                server.run_until(boundary)
            if scale_b == boundary:
                self._evaluate_autoscalers(boundary)
                self._next_scale_boundary += self.config.autoscale.interval_us
        for server in self.servers:
            server.run_until(t_us)
        self._clock_us = max(self._clock_us, t_us)

    def _evaluate_autoscalers(self, boundary: float) -> None:
        tracer = self.obs.tracer
        for shard, scaler in enumerate(self.autoscalers):
            decision = scaler.evaluate(boundary)
            self._g_depth.set(shard, float(len(self.servers[shard].queue)))
            self._g_workers.set(shard, float(self.servers[shard].workers))
            if decision is None:
                continue
            self.scale_log.append(decision)
            self._m_scale.inc(rank=shard)
            self._digest.update(decision.digest_token().encode())
            if tracer.enabled:
                tracer.instant(
                    "shard.scale",
                    rank=shard,
                    tick=-1,
                    ts_us=boundary,
                    cat="shard",
                    action=decision.action,
                    workers=decision.workers_after,
                    depth=decision.depth,
                )

    def run(self) -> None:
        """Drain every shard to completion, honouring scheduled boundaries."""
        if self.autoscalers is None and self.telemetry is None:
            for server in self.servers:
                server.run()
                self._clock_us = max(self._clock_us, server.now_us)
            return
        while not all(server.idle for server in self.servers):
            self._advance(self._pending_boundary())
        if self.telemetry is not None:
            self.telemetry.finalize(self._queue_depths())

    @property
    def now_us(self) -> float:
        return self._clock_us

    @property
    def routing_digest(self) -> str:
        """SHA-256 over the full routing + autoscale decision sequence."""
        return self._digest.hexdigest()
