"""Seeded fleet-scale load generation.

:func:`fleet_open_loop` is the headline-scenario driver: Poisson
open-loop arrivals over a synthetic tenant population of arbitrary size
(``t0`` … ``t{N-1}``), offered to a :class:`~repro.shard.router.ShardRouter`
in arrival order.  An optional popularity skew (``hot_fraction`` of
traffic concentrated on the first ``hot_tenants`` tenants) deterministically
overloads a few home shards and exercises ring spill-over.

Fleet-level rejections (:class:`~repro.errors.FleetFullError`) are a
load condition, not an error: they are counted, not raised, mirroring
how the single-cluster generators treat admission rejections.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FleetFullError
from repro.serve.jobs import JobSpec
from repro.shard.router import ShardRouter
from repro.util.validation import check_positive, check_range, require


@dataclass(frozen=True)
class FleetLoadStats:
    """What the generator offered vs. what the fleet accepted."""

    offered: int
    routed: int
    fleet_rejected: int


def fleet_open_loop(
    router: ShardRouter,
    rate_per_s: float,
    jobs: int,
    tenants: int,
    model: str = "quickstart",
    cores: int = 8,
    ticks_lo: int = 10,
    ticks_hi: int = 40,
    priority_hi: int = 4,
    deadline_us: float | None = None,
    seed: int = 0,
    model_seed: int = 42,
    hot_fraction: float = 0.0,
    hot_tenants: int = 1,
) -> FleetLoadStats:
    """Offer ``jobs`` Poisson arrivals across ``tenants`` synthetic tenants.

    Tenant names are ``t{i}``; each arrival picks a tenant uniformly,
    except that with probability ``hot_fraction`` it is drawn from the
    first ``hot_tenants`` names instead (the popularity skew).  All
    draws come from one seeded generator, so the offered stream — and
    therefore the fleet's entire schedule — is a pure function of the
    arguments.
    """
    check_positive("rate_per_s", rate_per_s)
    check_positive("jobs", jobs)
    check_positive("tenants", tenants)
    check_range("hot_fraction", hot_fraction, lo=0.0, hi=1.0)
    check_positive("hot_tenants", hot_tenants)
    require(
        hot_tenants <= tenants,
        f"hot_tenants={hot_tenants} exceeds tenants={tenants}",
    )
    rng = np.random.default_rng(seed)
    mean_gap_us = 1e6 / rate_per_s
    t = 0.0
    routed = 0
    rejected = 0
    for _ in range(jobs):
        t += float(rng.exponential(mean_gap_us))
        # Draw the skew coin unconditionally so hot and uniform configs
        # consume the RNG stream identically except for the tenant index.
        skewed = float(rng.random()) < hot_fraction
        if skewed:
            index = int(rng.integers(0, hot_tenants))
        else:
            index = int(rng.integers(0, tenants))
        spec = JobSpec(
            tenant=f"t{index}",
            model=model,
            cores=cores,
            ticks=int(rng.integers(ticks_lo, ticks_hi + 1)),
            priority=int(rng.integers(0, priority_hi + 1)),
            seed=model_seed,
            deadline_us=deadline_us,
        )
        try:
            router.submit(spec, at_us=t)
            routed += 1
        except FleetFullError:
            rejected += 1
    return FleetLoadStats(offered=jobs, routed=routed, fleet_rejected=rejected)
