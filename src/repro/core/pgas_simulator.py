"""PGAS-backend Compass (§VII).

The compute phases are identical to the MPI backend; the Network phase is
restructured around one-sided communication:

* each rank *puts* its aggregated per-destination spike batches directly
  into the destination ranks' globally addressable windows — no send-side
  staging handshake, no receive-side tag matching or critical section;
* one global barrier separates the write epoch from the read epoch,
  replacing the Reduce-Scatter (whose cost grows with communicator size);
* after the barrier each rank drains its own window locally.

Correctness relies on the property the paper states in §VII-A: the source
and ordering of spikes arriving at an axon within a tick do not affect the
next tick's computation, because the axon buffer is a set of bits.
"""

from __future__ import annotations


import numpy as np

from repro.arch.network import CoreNetwork
from repro.arch.spike import SpikeBatch
from repro.core.config import CompassConfig
from repro.core.metrics import TickMetrics
from repro.core.simulator import CompassBase
from repro.obs import Observability
from repro.util.hostclock import host_perf_counter


class PgasCompass(CompassBase):
    """One-sided (UPC/GASNet-style) Compass backend."""

    backend = "pgas"

    def __init__(
        self,
        network: CoreNetwork,
        config: CompassConfig | None = None,
        partition=None,
        sanitize: bool = False,
        obs: Observability | None = None,
    ) -> None:
        from repro.runtime.pgas import PgasCluster

        config = config or CompassConfig()
        super().__init__(network, config, partition, sanitize=sanitize, obs=obs)
        self.cluster = PgasCluster(config.n_processes)
        self._attach_tracer()

    def _attach_tracer(self) -> None:
        self.cluster.tracer = self.obs.tracer if self.obs.tracer.enabled else None

    def step(self) -> TickMetrics:
        tick = self.tick
        tr = self.obs.tracer
        pr = self.obs.prof
        if tr.enabled:
            tr.begin_tick(tick)
        if self.timer is not None:
            self.timer.reset_tick()
        self._apply_injections(tick)
        tm = TickMetrics(tick=tick)

        # Synapse + Neuron phases (identical to the MPI backend).
        per_rank_msgs, host = self._compute_phase(tick, tm)

        # Write epoch: one-sided puts of aggregated batches.
        t0 = host_perf_counter()
        per_rank_puts: list[int] = []
        per_rank_bytes: list[int] = []
        for rs, msgs in zip(self.ranks, per_rank_msgs):
            ep = self.cluster.endpoints[rs.rank]
            puts = 0
            nbytes = 0
            for dest, batch in msgs.items():
                ep.put(dest, batch, batch.nbytes)
                puts += 1
                nbytes += batch.nbytes
                self._m_msgs.inc(rs.rank)
                self._m_bytes.inc(rs.rank, batch.nbytes)
                self._h_bytes_send.observe(rs.rank, batch.nbytes)
            per_rank_puts.append(puts)
            per_rank_bytes.append(nbytes)
            tm.messages += puts
            tm.bytes_sent += nbytes

        # Local delivery overlaps the communication epoch, as in Listing 1.
        local_counts: list[int] = []
        for rs in self.ranks:
            gids, axons, delays = rs.local_buf.drain()
            rs.block.deliver(gids, axons, delays, tick)
            local_counts.append(gids.size)

        # Global barrier: write epoch -> read epoch.
        t_barrier = host_perf_counter() if pr.enabled else 0.0
        for rs in self.ranks:
            self.cluster.endpoints[rs.rank].barrier()
        if pr.enabled:
            # Serial lock-step pass: apportion barrier host cost per rank.
            sync_s = (host_perf_counter() - t_barrier) / self.config.n_processes
            for rs in self.ranks:
                pr.phase(
                    "sync", rs.rank, sync_s, sent=per_rank_puts[rs.rank]
                )
        if tr.enabled:
            for rs in self.ranks:
                tr.span(
                    "sync",
                    rank=rs.rank,
                    phase="sync",
                    tick=tick,
                    puts=per_rank_puts[rs.rank],
                    model_s=self._sync_model_s,
                )
        if self.detector is not None:
            # The barrier is an all-to-all fence: model it as a
            # contribute/fetch pair so the happens-before graph orders
            # this tick's thread-team writes before the next tick's.
            for rs in self.ranks:
                self.detector.on_collective_contribute(rs.rank)
            for rs in self.ranks:
                self.detector.on_collective_fetch(rs.rank)
            self.detector.on_collective_finish()

        # Read epoch: each rank drains its own window.
        for rs in self.ranks:
            tn0 = host_perf_counter() if pr.enabled else 0.0
            ep = self.cluster.endpoints[rs.rank]
            spikes_received = 0
            bytes_received = 0
            n_batches = 0
            for batch in ep.read_window():
                assert isinstance(batch, SpikeBatch)
                rs.block.deliver(batch.tgt_gid, batch.tgt_axon, batch.delay, tick)
                spikes_received += batch.count
                bytes_received += batch.nbytes
                n_batches += 1
            self._g_queue.set(rs.rank, n_batches)
            if pr.enabled:
                pr.phase(
                    "network",
                    rs.rank,
                    host_perf_counter() - tn0,
                    messages=n_batches,
                    spikes_received=spikes_received,
                    local_delivered=local_counts[rs.rank],
                )
            if tr.enabled:
                tr.span(
                    "network",
                    rank=rs.rank,
                    phase="network",
                    tick=tick,
                    messages=n_batches,
                    spikes_received=spikes_received,
                    bytes_received=bytes_received,
                    local_delivered=local_counts[rs.rank],
                )
            if self.timer is not None:
                self.timer.rank_network(
                    self.config.n_processes,
                    local_counts[rs.rank],
                    0,
                    spikes_received,
                    bytes_received,
                    rs.working_set_bytes,
                    puts=per_rank_puts[rs.rank],
                    bytes_sent=per_rank_bytes[rs.rank],
                )
        host.network += host_perf_counter() - t0

        self.metrics.host += host
        if self.timer is not None:
            self.metrics.simulated += self.timer.tick_times()
        self.metrics.record_tick(tm)
        self._h_msgs_tick.observe(-1, tm.messages)
        if tr.enabled:
            tr.tick_summary(
                tick,
                fired=tm.fired,
                spikes=tm.local_spikes + tm.remote_spikes,
                neurons=tm.neurons_evaluated,
                active_axons=tm.active_axons,
            )
        self.tick += 1
        return tm
