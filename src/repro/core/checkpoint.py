"""Checkpoint/restore of a running simulation.

The paper lists "verifying TrueNorth correctness via regression testing" as
Compass's first use-case (§I).  Checkpoints capture the complete dynamic
state — membrane potentials, PRNG streams, pending axon-buffer spikes, and
the tick counter — so a restored run continues bit-exactly.  Static model
configuration is *not* stored; the caller re-creates the simulator from the
same :class:`~repro.arch.network.CoreNetwork` (a fingerprint guards against
restoring onto a different model).

Two layers:

* :func:`capture_state` / :func:`restore_state` — in-memory coordinated
  snapshots (deep copies), taken at a tick boundary where the virtual
  cluster is quiescent (mailboxes drained, collectives finished).  The
  resilience subsystem's periodic-checkpoint driver uses these directly —
  restart-from-checkpoint is a pure state copy, no disk round-trip.
* :func:`save_checkpoint` / :func:`load_checkpoint` — the on-disk ``.npz``
  format layered on top, with a model fingerprint guard.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.simulator import CompassBase
from repro.errors import CheckpointError

_FORMAT_VERSION = 1


def capture_state(sim: CompassBase) -> dict[str, Any]:
    """Deep-copy the complete dynamic state of ``sim`` (tick boundary).

    Includes pending external injections, so a rollback replays the same
    inputs the abandoned segment saw — a requirement of the bit-exact
    recovery contract.  The simulator's metric-registry instruments
    (``compass_*``) are snapshotted too, so a restored run's per-rank
    profile matches an uninterrupted run; resilience meta-counters are
    deliberately excluded and stay monotone across rollbacks.
    """
    return {
        "tick": sim.tick,
        "blocks": [rs.block.snapshot() for rs in sim.ranks],
        "injections": {t: list(v) for t, v in sim._injections.items()},
        "registry": sim.obs.registry.snapshot(prefix="compass_"),
    }


def restore_state(sim: CompassBase, state: dict[str, Any]) -> None:
    """Restore a :func:`capture_state` snapshot into ``sim`` in place."""
    blocks = state["blocks"]
    if len(blocks) != len(sim.ranks):
        raise CheckpointError(
            f"snapshot has {len(blocks)} ranks, simulator has {len(sim.ranks)}"
        )
    for rs, snap in zip(sim.ranks, blocks):
        rs.block.restore(snap)
        # An aborted tick leaves spikes staged between the compute and
        # network phases; at the checkpointed tick boundary these buffers
        # were empty, so discard the strays or the replay delivers them.
        rs.local_buf.drain()
        rs.remote_bufs.flush(0)
    sim.tick = int(state["tick"])
    sim._injections = {t: list(v) for t, v in state["injections"].items()}
    registry_snap = state.get("registry")
    if registry_snap is not None:
        sim.obs.registry.restore(registry_snap)


def state_nbytes(sim: CompassBase) -> int:
    """Checkpoint payload size: what a coordinated snapshot writes.

    Sums ``.nbytes`` of the live arrays a :meth:`CoreBlock.snapshot`
    copies (potential, RNG state, pending axon buffers) without taking
    the copies, so callers metering every simulator construction — the
    bench meter in ``benchmarks/conftest.py`` — pay no allocation cost.
    """
    total = 0
    for rs in sim.ranks:
        block = rs.block
        total += (
            block.state.potential.nbytes
            + block.state.rng.state.nbytes
            + block.buffers.pending.nbytes
        )
    return total


def _network_fingerprint(sim: CompassBase) -> str:
    """Stable digest of the static model configuration."""
    h = hashlib.sha256()
    net = sim.network
    h.update(np.int64(net.n_cores).tobytes())
    h.update(net.crossbars.tobytes())
    h.update(net.axon_types.tobytes())
    h.update(net.target_gid.tobytes())
    h.update(net.target_axon.tobytes())
    h.update(net.target_delay.tobytes())
    h.update(net.neuron_params.weights.tobytes())
    h.update(net.neuron_params.threshold.tobytes())
    h.update(net.neuron_params.leak.tobytes())
    return h.hexdigest()


def save_checkpoint(sim: CompassBase, path: str | Path) -> None:  # repro: obs-flush
    """Write the full dynamic state of ``sim`` to an ``.npz`` file."""
    arrays: dict[str, np.ndarray] = {
        "format_version": np.int64(_FORMAT_VERSION),
        "tick": np.int64(sim.tick),
        "n_ranks": np.int64(len(sim.ranks)),
        "fingerprint": np.frombuffer(
            _network_fingerprint(sim).encode(), dtype=np.uint8
        ),
    }
    if sim._injections:
        raise CheckpointError("cannot checkpoint with pending external injections")
    for rs in sim.ranks:
        snap = rs.block.snapshot()
        arrays[f"rank{rs.rank}_potential"] = snap["potential"]
        arrays[f"rank{rs.rank}_rng"] = snap["rng"]
        arrays[f"rank{rs.rank}_pending"] = snap["pending"]
    np.savez_compressed(Path(path), **arrays)


def load_checkpoint(sim: CompassBase, path: str | Path) -> None:
    """Restore dynamic state saved by :func:`save_checkpoint` into ``sim``.

    ``sim`` must have been built from the identical network with the same
    number of processes.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise CheckpointError(f"unsupported checkpoint version {version}")
        stored_fp = bytes(data["fingerprint"]).decode()
        if stored_fp != _network_fingerprint(sim):
            raise CheckpointError(
                "checkpoint was taken on a different network configuration"
            )
        n_ranks = int(data["n_ranks"])
        if n_ranks != len(sim.ranks):
            raise CheckpointError(
                f"checkpoint has {n_ranks} ranks, simulator has {len(sim.ranks)}"
            )
        for rs in sim.ranks:
            rs.block.restore(
                {
                    "potential": data[f"rank{rs.rank}_potential"],
                    "rng": data[f"rank{rs.rank}_rng"],
                    "pending": data[f"rank{rs.rank}_pending"],
                }
            )
        sim.tick = int(data["tick"])
