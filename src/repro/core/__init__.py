"""The Compass simulator — the paper's primary contribution (§III).

Compass partitions the TrueNorth cores of a model across (simulated)
processes and executes the semi-synchronous main loop of Listing 1: per
tick a Synapse phase (axon → crossbar → neuron accumulation), a Neuron
phase (integrate-leak-fire, spike aggregation), and a Network phase
(message exchange and spike delivery).  Two backends implement the Network
phase: two-sided MPI (:class:`~repro.core.simulator.Compass`) and
one-sided PGAS (:class:`~repro.core.pgas_simulator.PgasCompass`).
"""

from repro.core.config import CompassConfig
from repro.core.partition import Partition
from repro.core.metrics import PhaseTimes, TickMetrics, RunMetrics
from repro.core.simulator import Compass, RunResult
from repro.core.pgas_simulator import PgasCompass
from repro.core.checkpoint import save_checkpoint, load_checkpoint

__all__ = [
    "CompassConfig",
    "Partition",
    "PhaseTimes",
    "TickMetrics",
    "RunMetrics",
    "Compass",
    "RunResult",
    "PgasCompass",
    "save_checkpoint",
    "load_checkpoint",
]
