"""Per-phase metrics: event counts, simulated time, host wall-clock time.

The evaluation section of the paper reports, per run: total wall-clock time
and its Synapse/Neuron/Network breakdown (Figs 4a, 5, 6), and per tick: MPI
message count and total spike count (Fig 4b).  :class:`RunMetrics`
accumulates exactly those quantities.  When a
:class:`~repro.runtime.machine.MachineConfig` is supplied, event counts are
also converted into *simulated* phase seconds through the machine's cost
model — that is how laptop-scale functional runs report Blue Gene-scale
timings without pretending the laptop is a Blue Gene.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.runtime.machine import MachineConfig
from repro.util.units import SPIKE_BYTES, slowdown_vs_realtime


@dataclass
class PhaseTimes:
    """Seconds per phase (simulated machine time or host time)."""

    synapse: float = 0.0
    neuron: float = 0.0
    network: float = 0.0

    @property
    def total(self) -> float:
        return self.synapse + self.neuron + self.network

    def __iadd__(self, other: "PhaseTimes") -> "PhaseTimes":
        self.synapse += other.synapse
        self.neuron += other.neuron
        self.network += other.network
        return self

    def as_dict(self) -> dict[str, float]:
        return {
            "synapse": self.synapse,
            "neuron": self.neuron,
            "network": self.network,
            "total": self.total,
        }


@dataclass
class TickMetrics:
    """Event counts aggregated over all ranks for one tick."""

    tick: int = 0
    active_axons: int = 0
    neurons_evaluated: int = 0
    fired: int = 0
    local_spikes: int = 0
    remote_spikes: int = 0
    messages: int = 0
    bytes_sent: int = 0

    @property
    def total_spikes(self) -> int:
        return self.local_spikes + self.remote_spikes


@dataclass
class RunMetrics:
    """Accumulated metrics for a whole run."""

    n_ranks: int = 1
    ticks: int = 0
    total_fired: int = 0
    total_local_spikes: int = 0
    total_remote_spikes: int = 0
    total_messages: int = 0
    total_bytes: int = 0
    total_active_axons: int = 0
    simulated: PhaseTimes = field(default_factory=PhaseTimes)
    host: PhaseTimes = field(default_factory=PhaseTimes)
    per_tick: list[TickMetrics] = field(default_factory=list)
    #: Simulated seconds spent on resilience machinery rather than the
    #: simulation proper: coordinated checkpoints, failure detection,
    #: restart/spare takeover, and replayed work.  Populated by
    #: :class:`repro.resilience.recovery.ResilientRunner`.
    overhead_s: float = 0.0

    def record_tick(self, tm: TickMetrics) -> None:
        self.ticks += 1
        self.total_fired += tm.fired
        self.total_local_spikes += tm.local_spikes
        self.total_remote_spikes += tm.remote_spikes
        self.total_messages += tm.messages
        self.total_bytes += tm.bytes_sent
        self.total_active_axons += tm.active_axons
        self.per_tick.append(tm)

    def rollback_to(self, tick: int) -> None:
        """Discard per-tick records at ticks >= ``tick``; recompute totals.

        Checkpoint-rollback support: event counters must match what an
        uninterrupted run would report, so the abandoned segment's counts
        are removed (the replay re-records them).  Host and simulated
        *time* are deliberately kept — work thrown away still cost time,
        and that cost is exactly what the recovery report accounts for.
        """
        kept = [tm for tm in self.per_tick if tm.tick < tick]
        self.per_tick = kept
        self.ticks = len(kept)
        self.total_fired = sum(tm.fired for tm in kept)
        self.total_local_spikes = sum(tm.local_spikes for tm in kept)
        self.total_remote_spikes = sum(tm.remote_spikes for tm in kept)
        self.total_messages = sum(tm.messages for tm in kept)
        self.total_bytes = sum(tm.bytes_sent for tm in kept)
        self.total_active_axons = sum(tm.active_axons for tm in kept)

    # -- paper-facing derived quantities -------------------------------------

    def mean_rate_hz(self, n_neurons: int) -> float:
        """Mean firing rate over the run, in Hz (1 ms ticks)."""
        if self.ticks == 0 or n_neurons == 0:
            return 0.0
        return self.total_fired / n_neurons / (self.ticks / 1000.0)

    def messages_per_tick(self) -> float:
        return self.total_messages / max(self.ticks, 1)

    def spikes_per_tick(self) -> float:
        """White-matter (remote) spikes per tick — Fig 4(b)'s spike series."""
        return self.total_remote_spikes / max(self.ticks, 1)

    def bytes_per_tick(self) -> float:
        return self.total_bytes / max(self.ticks, 1)

    def simulated_slowdown(self) -> float:
        """Simulated time vs real time (the paper's 388× figure)."""
        return slowdown_vs_realtime(self.simulated.total, max(self.ticks, 1))

    def summary(self, n_neurons: int) -> dict[str, float]:
        return {
            "ticks": self.ticks,
            "ranks": self.n_ranks,
            "total_fired": self.total_fired,
            "mean_rate_hz": self.mean_rate_hz(n_neurons),
            "messages_per_tick": self.messages_per_tick(),
            "remote_spikes_per_tick": self.spikes_per_tick(),
            "bytes_per_tick": self.bytes_per_tick(),
            "simulated_total_s": self.simulated.total,
            "host_total_s": self.host.total,
            "overhead_s": self.overhead_s,
        }


class SimulatedTimer:
    """Converts one rank-tick's event counts into simulated phase seconds.

    The *slowest rank* bounds each phase in a semi-synchronous loop, so the
    per-tick simulated time is a max over ranks; this class tracks that max
    incrementally.
    """

    def __init__(self, machine: MachineConfig, backend: str) -> None:
        if backend not in ("mpi", "pgas"):
            raise ValueError(f"unknown backend {backend!r}")
        self.machine = machine
        self.backend = backend
        self.cost = machine.machine.cost
        self.threads = machine.effective_threads
        self.reset_tick()

    def reset_tick(self) -> None:
        self._synapse_max = 0.0
        self._neuron_max = 0.0
        self._network_max = 0.0

    def rank_compute(
        self,
        active_axons: int,
        neurons: int,
        remote_spikes: int,
        messages_sent: int,
        working_set_bytes: float,
    ) -> None:
        # Processes on a node share its cache; scale to the node aggregate.
        mem = self.cost.memory_factor(
            working_set_bytes * self.machine.procs_per_node
        )
        self._synapse_max = max(
            self._synapse_max,
            self.cost.synapse_time(active_axons, self.threads, mem),
        )
        self._neuron_max = max(
            self._neuron_max,
            self.cost.neuron_time(
                neurons, self.threads, remote_spikes, messages_sent, mem
            ),
        )

    def rank_network(
        self,
        n_ranks: int,
        local_spikes: int,
        messages_received: int,
        spikes_received: int,
        bytes_received: int,
        working_set_bytes: float,
        puts: int = 0,
        bytes_sent: int = 0,
    ) -> None:
        mem = self.cost.memory_factor(
            working_set_bytes * self.machine.procs_per_node
        )
        if self.backend == "mpi":
            t = self.cost.network_time_mpi(
                n_ranks,
                local_spikes,
                messages_received,
                spikes_received,
                bytes_received,
                self.threads,
                mem,
            )
        else:
            t = self.cost.network_time_pgas(
                n_ranks,
                local_spikes,
                puts,
                spikes_received,
                bytes_sent,
                self.threads,
                mem,
            )
        self._network_max = max(self._network_max, t)

    def tick_times(self) -> PhaseTimes:
        return PhaseTimes(
            synapse=self._synapse_max,
            neuron=self._neuron_max,
            network=self._network_max,
        )


def estimate_bytes(n_spikes: int) -> int:
    """Wire bytes for ``n_spikes`` at the paper's 20 B/spike format."""
    return n_spikes * SPIKE_BYTES
