"""Spike buffering: local delivery buffers and per-destination aggregation.

§III: "To minimize communication overhead, Compass aggregates spikes
between pairs of processes into a single MPI message ... and preallocates
per-process send buffers."  :class:`RemoteSendBuffers` is that structure;
:class:`LocalBuffer` is the ``localBuf`` of Listing 1 that non-master
threads drain while the master runs the Reduce-Scatter.
"""

from __future__ import annotations

import numpy as np

from repro.arch.spike import SpikeBatch


class LocalBuffer:
    """Spikes destined for cores on this process (same shared memory)."""

    __slots__ = ("tgt_gid", "tgt_axon", "delay")

    def __init__(self) -> None:
        self.tgt_gid: list[np.ndarray] = []
        self.tgt_axon: list[np.ndarray] = []
        self.delay: list[np.ndarray] = []

    def push(self, tgt_gid: np.ndarray, tgt_axon: np.ndarray, delay: np.ndarray) -> None:
        if tgt_gid.size == 0:
            return
        self.tgt_gid.append(np.asarray(tgt_gid, dtype=np.int64))
        self.tgt_axon.append(np.asarray(tgt_axon, dtype=np.int32))
        self.delay.append(np.asarray(delay, dtype=np.int32))

    def drain(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (gid, axon, delay) arrays and reset the buffer."""
        if not self.tgt_gid:
            empty64 = np.zeros(0, dtype=np.int64)
            empty32 = np.zeros(0, dtype=np.int32)
            return empty64, empty32, empty32
        out = (
            np.concatenate(self.tgt_gid),
            np.concatenate(self.tgt_axon),
            np.concatenate(self.delay),
        )
        self.tgt_gid.clear()
        self.tgt_axon.clear()
        self.delay.clear()
        return out

    @property
    def count(self) -> int:
        return int(sum(a.size for a in self.tgt_gid))


class RemoteSendBuffers:
    """Per-destination-rank aggregation buffers (``remoteBufAgg``).

    One buffer per remote rank; at the end of the Neuron phase each
    non-empty buffer flushes into a single :class:`SpikeBatch` message.
    """

    def __init__(self, n_ranks: int, own_rank: int) -> None:
        self.n_ranks = n_ranks
        self.own_rank = own_rank
        self._gid: list[list[np.ndarray]] = [[] for _ in range(n_ranks)]
        self._axon: list[list[np.ndarray]] = [[] for _ in range(n_ranks)]
        self._delay: list[list[np.ndarray]] = [[] for _ in range(n_ranks)]

    def push(
        self,
        dest_ranks: np.ndarray,
        tgt_gid: np.ndarray,
        tgt_axon: np.ndarray,
        delay: np.ndarray,
    ) -> None:
        """Scatter spikes into their destination buffers (vectorised)."""
        dest_ranks = np.asarray(dest_ranks, dtype=np.int64)
        if dest_ranks.size == 0:
            return
        order = np.argsort(dest_ranks, kind="stable")
        sorted_dests = dest_ranks[order]
        uniq, starts = np.unique(sorted_dests, return_index=True)
        bounds = np.append(starts, sorted_dests.size)
        for i, dest in enumerate(uniq):
            sel = order[bounds[i] : bounds[i + 1]]
            self._gid[dest].append(tgt_gid[sel])
            self._axon[dest].append(tgt_axon[sel])
            self._delay[dest].append(delay[sel])

    def flush(self, tick: int) -> dict[int, SpikeBatch]:
        """Build one message per non-empty destination and reset."""
        out: dict[int, SpikeBatch] = {}
        for dest in range(self.n_ranks):
            if not self._gid[dest]:
                continue
            batch = SpikeBatch(
                np.concatenate(self._gid[dest]),
                np.concatenate(self._axon[dest]),
                np.concatenate(self._delay[dest]),
                tick,
            )
            out[dest] = batch
            self._gid[dest].clear()
            self._axon[dest].clear()
            self._delay[dest].clear()
        return out

    def send_counts(self) -> np.ndarray:
        """How many messages this rank will send to each destination.

        With aggregation this is 0 or 1 per destination — the vector the
        Reduce-Scatter sums so every rank learns its expected receives.
        """
        return np.array(
            [1 if self._gid[d] else 0 for d in range(self.n_ranks)], dtype=np.int64
        )
