"""Core → process partitioning.

§III: "each process in Compass ... uses an implicit TrueNorth core to
process map".  We use the same contiguous block map: process *p* owns a
contiguous gid range, computable in O(1) from the gid — no lookup tables
cross process boundaries.  The PCC lays regions out contiguously in gid
space precisely so this map keeps each functional region on as few
processes as necessary (§IV).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive


class Partition:
    """Contiguous partition of ``n_cores`` gids over ``n_ranks``.

    The default split is uniform: the first ``n_cores % n_ranks`` ranks own
    one extra core, matching the thread partition rule and keeping the map
    implicit.  :meth:`from_boundaries` builds the region-aligned partitions
    the PCC emits (§V: "We simulate each brain region using non-overlapping
    sets of 1 or more processes").
    """

    def __init__(self, n_cores: int, n_ranks: int) -> None:
        check_positive("n_cores", n_cores)
        check_positive("n_ranks", n_ranks)
        if n_ranks > n_cores:
            raise ValueError(
                f"cannot spread {n_cores} cores over {n_ranks} ranks: "
                "every rank must own at least one core"
            )
        self.n_cores = int(n_cores)
        self.n_ranks = int(n_ranks)
        base, extra = divmod(self.n_cores, self.n_ranks)
        #: First gid of each rank, plus the end sentinel (length n_ranks+1).
        starts = np.zeros(self.n_ranks + 1, dtype=np.int64)
        sizes = np.full(self.n_ranks, base, dtype=np.int64)
        sizes[:extra] += 1
        starts[1:] = np.cumsum(sizes)
        self._starts = starts

    @classmethod
    def from_boundaries(cls, starts: np.ndarray) -> "Partition":
        """Build a partition from explicit rank start offsets.

        ``starts`` has length ``n_ranks + 1`` with ``starts[0] == 0``,
        strictly increasing, and ``starts[-1] == n_cores``.
        """
        starts = np.asarray(starts, dtype=np.int64)
        if starts.ndim != 1 or starts.size < 2:
            raise ValueError("boundaries must be a 1-D array of length >= 2")
        if starts[0] != 0 or np.any(np.diff(starts) <= 0):
            raise ValueError("boundaries must start at 0 and strictly increase")
        part = cls.__new__(cls)
        part.n_cores = int(starts[-1])
        part.n_ranks = starts.size - 1
        part._starts = starts.copy()
        return part

    def range_of_rank(self, rank: int) -> tuple[int, int]:
        """gid interval [lo, hi) owned by ``rank``."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        return int(self._starts[rank]), int(self._starts[rank + 1])

    def size_of_rank(self, rank: int) -> int:
        lo, hi = self.range_of_rank(rank)
        return hi - lo

    def rank_of_gid(self, gid: np.ndarray | int) -> np.ndarray | int:
        """Owning rank(s) for gid(s) — the implicit map, vectorised."""
        gids = np.asarray(gid, dtype=np.int64)
        if gids.size and (gids.min() < 0 or gids.max() >= self.n_cores):
            raise ValueError("gid out of range")
        ranks = np.searchsorted(self._starts, gids, side="right") - 1
        if np.isscalar(gid) or (isinstance(gid, np.ndarray) and gid.ndim == 0):
            return int(ranks)
        return ranks

    def ranks_of_range(self, gid_lo: int, gid_hi: int) -> range:
        """All ranks overlapping the gid interval [lo, hi)."""
        if gid_lo >= gid_hi:
            return range(0)
        first = int(self.rank_of_gid(gid_lo))
        last = int(self.rank_of_gid(gid_hi - 1))
        return range(first, last + 1)

    def __iter__(self):
        for rank in range(self.n_ranks):
            yield self.range_of_rank(rank)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Partition(cores={self.n_cores}, ranks={self.n_ranks})"
