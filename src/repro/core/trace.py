"""Spike trace files: export, import, compare, replay.

Compass is "the key contract between our hardware architects and software
algorithm/application designers" (§II): regression flows exchange spike
traces between the simulator and hardware test benches.  This module
defines that interchange: a compact binary trace format (one 16-byte
record per spike), exact comparison with first-divergence reporting, and
replay of a recorded trace as external input to another simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.simulator import SpikeRecorder
from repro.errors import CheckpointError

_MAGIC = b"CMPS"
_VERSION = 1

#: One trace record: tick (int32), gid (int64), neuron (int32).
TRACE_DTYPE = np.dtype([("tick", "<i4"), ("gid", "<i8"), ("neuron", "<i4")])


def write_trace(recorder: SpikeRecorder, path: str | Path) -> int:  # repro: obs-flush
    """Serialise a recorded spike trace; returns bytes written."""
    t, g, n = recorder.to_arrays()
    rec = np.empty(t.size, dtype=TRACE_DTYPE)
    rec["tick"] = t
    rec["gid"] = g
    rec["neuron"] = n
    payload = (
        _MAGIC
        + np.int32(_VERSION).tobytes()
        + np.int64(t.size).tobytes()
        + rec.tobytes()
    )
    Path(path).write_bytes(payload)
    return len(payload)


def read_trace(path: str | Path) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Load a trace file; returns canonical (tick, gid, neuron) arrays."""
    data = Path(path).read_bytes()
    if data[:4] != _MAGIC:
        raise CheckpointError(f"{path}: not a Compass trace file")
    version = int(np.frombuffer(data[4:8], dtype=np.int32)[0])
    if version != _VERSION:
        raise CheckpointError(f"{path}: unsupported trace version {version}")
    count = int(np.frombuffer(data[8:16], dtype=np.int64)[0])
    body = data[16:]
    usable = len(body) - (len(body) % TRACE_DTYPE.itemsize)
    rec = np.frombuffer(body[:usable], dtype=TRACE_DTYPE)
    if rec.size != count:
        raise CheckpointError(f"{path}: truncated trace ({rec.size}/{count})")
    return (
        rec["tick"].astype(np.int64),
        rec["gid"].astype(np.int64),
        rec["neuron"].astype(np.int64),
    )


@dataclass(frozen=True)
class TraceDiff:
    """Result of comparing two traces."""

    equal: bool
    first_divergence_tick: int | None = None
    detail: str = ""


def compare_traces(
    a: tuple[np.ndarray, np.ndarray, np.ndarray],
    b: tuple[np.ndarray, np.ndarray, np.ndarray],
) -> TraceDiff:
    """Exact comparison with first-divergence localisation.

    Traces must be in canonical order (as produced by
    :meth:`SpikeRecorder.to_arrays` or :func:`read_trace`).
    """
    ta, ga, na = a
    tb, gb, nb = b
    n = min(ta.size, tb.size)
    mismatch = np.nonzero(
        (ta[:n] != tb[:n]) | (ga[:n] != gb[:n]) | (na[:n] != nb[:n])
    )[0]
    if mismatch.size:
        i = int(mismatch[0])
        return TraceDiff(
            equal=False,
            first_divergence_tick=int(min(ta[i], tb[i])),
            detail=(
                f"record {i}: ({ta[i]},{ga[i]},{na[i]}) != "
                f"({tb[i]},{gb[i]},{nb[i]})"
            ),
        )
    if ta.size != tb.size:
        longer = a if ta.size > tb.size else b
        return TraceDiff(
            equal=False,
            first_divergence_tick=int(longer[0][n]),
            detail=f"length mismatch: {ta.size} vs {tb.size}",
        )
    return TraceDiff(equal=True)


def replay_as_input(
    trace: tuple[np.ndarray, np.ndarray, np.ndarray],
    axon_of_neuron,
    tick_offset: int = 0,
):
    """Convert a recorded trace into (gid, axon, tick) injection triples.

    ``axon_of_neuron(gid, neuron) -> (gid, axon) | None`` maps each
    recorded source spike to the external axon that should receive it in
    the replay target (None drops the spike).  Feed the result to
    :meth:`repro.core.simulator.CompassBase.attach_schedule`.
    """
    t, g, n = trace
    for tick, gid, neuron in zip(t.tolist(), g.tolist(), n.tolist()):
        mapped = axon_of_neuron(gid, neuron)
        if mapped is None:
            continue
        tgt_gid, tgt_axon = mapped
        yield tgt_gid, tgt_axon, tick + tick_offset
