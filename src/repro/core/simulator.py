"""The Compass main simulation loop (Listing 1) with the MPI backend.

Per simulated tick every rank executes:

* **Synapse phase** — collect due axon spikes, propagate along crossbar
  rows into per-neuron, per-axon-type event counts;
* **Neuron phase** — integrate-leak-fire every neuron; route fired spikes
  to the local buffer (destination core on the same rank) or aggregate
  them into per-destination remote buffers, then post one ``MPI_Isend``
  per non-empty destination;
* **Network phase** — a Reduce-Scatter tells each rank how many messages
  to expect; local spikes are delivered (overlapping the collective on the
  real machine); then the rank probes/receives exactly that many messages
  and delivers their spikes into axon buffers.

The virtual cluster executes ranks in lock-step, which is functionally
equivalent to the real semi-synchronous execution: no rank can observe
tick *t+1* state before every rank finished tick *t*.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.arch.coreblock import CoreBlock
from repro.arch.network import CoreNetwork
from repro.arch.spike import SpikeBatch
from repro.core.buffers import LocalBuffer, RemoteSendBuffers
from repro.core.config import CompassConfig
from repro.core.metrics import (
    PhaseTimes,
    RunMetrics,
    SimulatedTimer,
    TickMetrics,
    estimate_bytes,
)
from repro.core.partition import Partition
from repro.errors import MessageLossError
from repro.obs import Observability
from repro.util.hostclock import host_perf_counter


class SpikeRecorder:
    """Optional full spike trace: (tick, gid, neuron) triples."""

    def __init__(self) -> None:
        self._ticks: list[np.ndarray] = []
        self._gids: list[np.ndarray] = []
        self._neurons: list[np.ndarray] = []

    def record(self, tick: int, gids: np.ndarray, neurons: np.ndarray) -> None:
        if gids.size == 0:
            return
        self._ticks.append(np.full(gids.shape, tick, dtype=np.int64))
        self._gids.append(np.asarray(gids, dtype=np.int64))
        self._neurons.append(np.asarray(neurons, dtype=np.int64))

    def truncate(self, tick: int) -> int:
        """Drop every recorded spike at ticks >= ``tick``; return count.

        Checkpoint rollback support: when the resilience driver restores
        a failed run to its last coordinated checkpoint, spikes recorded
        by the abandoned segment must be discarded so the replay
        re-records them exactly once and the final trace matches an
        uninterrupted run bit for bit.
        """
        kept_t: list[np.ndarray] = []
        kept_g: list[np.ndarray] = []
        kept_n: list[np.ndarray] = []
        removed = 0
        for t, g, n in zip(self._ticks, self._gids, self._neurons):
            sel = t < tick
            removed += int((~sel).sum())
            if sel.all():
                kept_t.append(t)
                kept_g.append(g)
                kept_n.append(n)
            elif sel.any():
                kept_t.append(t[sel])
                kept_g.append(g[sel])
                kept_n.append(n[sel])
        self._ticks, self._gids, self._neurons = kept_t, kept_g, kept_n
        return removed

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonically sorted (tick, gid, neuron) arrays.

        Sorting makes traces comparable across partitionings, where rank
        iteration order differs but the spike *set* must not.
        """
        if not self._ticks:
            z = np.zeros(0, dtype=np.int64)
            return z, z.copy(), z.copy()
        t = np.concatenate(self._ticks)
        g = np.concatenate(self._gids)
        n = np.concatenate(self._neurons)
        order = np.lexsort((n, g, t))
        return t[order], g[order], n[order]

    @property
    def count(self) -> int:
        return int(sum(a.size for a in self._ticks))


@dataclass
class RunResult:
    """Outcome of a :meth:`Compass.run` call."""

    metrics: RunMetrics
    n_neurons: int
    spikes: SpikeRecorder | None = None

    @property
    def total_spikes(self) -> int:
        return self.metrics.total_fired

    @property
    def mean_rate_hz(self) -> float:
        return self.metrics.mean_rate_hz(self.n_neurons)

    @property
    def simulated_times(self) -> PhaseTimes:
        return self.metrics.simulated

    def summary(self) -> dict[str, float]:
        return self.metrics.summary(self.n_neurons)


@dataclass
class _RankState:
    """Everything one simulated MPI rank owns."""

    rank: int
    block: CoreBlock
    local_buf: LocalBuffer
    remote_bufs: RemoteSendBuffers
    working_set_bytes: int = 0

    @staticmethod
    def working_set(block: CoreBlock) -> int:
        p = block.params
        return int(
            block.crossbars.nbytes
            + block.axon_types.nbytes
            + block.buffers.pending.nbytes
            + block.state.potential.nbytes
            + block.state.rng.state.nbytes
            + block.target_gid.nbytes
            + block.target_axon.nbytes
            + block.target_delay.nbytes
            + p.weights.nbytes
            + p.threshold.nbytes
            + p.leak.nbytes
        )


class CompassBase:
    """Shared machinery of the MPI and PGAS backends."""

    backend = "mpi"

    def __init__(
        self,
        network: CoreNetwork,
        config: CompassConfig,
        partition: Partition | None = None,
        sanitize: bool = False,
        obs: Observability | None = None,
    ) -> None:
        """``partition`` overrides the uniform implicit core→process map,
        e.g. with the region-aligned boundaries of
        :meth:`repro.compiler.pcc.CompiledModel.partition_for` so that
        intra-region (gray matter) spiking stays in shared memory (§IV).

        ``sanitize=True`` attaches a happens-before race detector
        (:class:`repro.check.races.HappensBeforeDetector`) to the run:
        every message, collective, and modelled thread-team write is
        tracked with vector clocks, and :meth:`race_report` returns what
        it found.  Functional results are unchanged; the run is slower.

        ``obs`` attaches an :class:`repro.obs.Observability` bundle.  The
        metric registry in it is always live (profiling reads it); span
        tracing records an event stream only when the bundle was built
        with :meth:`Observability.with_tracing`.  Defaults to a private
        metrics-only bundle.
        """
        self.network = network
        self.config = config
        self.detector = None
        if sanitize:
            from repro.check.races import HappensBeforeDetector

            self.detector = HappensBeforeDetector(
                config.n_processes, config.threads_per_process
            )
        if partition is not None:
            if partition.n_cores != network.n_cores:
                raise ValueError(
                    f"partition covers {partition.n_cores} cores, "
                    f"network has {network.n_cores}"
                )
            if partition.n_ranks != config.n_processes:
                raise ValueError(
                    f"partition has {partition.n_ranks} ranks, "
                    f"config requests {config.n_processes}"
                )
        self.partition = partition or Partition(
            network.n_cores, config.n_processes
        )
        self.ranks: list[_RankState] = []
        for rank in range(config.n_processes):
            lo, hi = self.partition.range_of_rank(rank)
            block = CoreBlock(network, lo, hi)
            state = _RankState(
                rank=rank,
                block=block,
                local_buf=LocalBuffer(),
                remote_bufs=RemoteSendBuffers(config.n_processes, rank),
            )
            state.working_set_bytes = _RankState.working_set(block)
            self.ranks.append(state)
        self.tick = 0
        self.metrics = RunMetrics(n_ranks=config.n_processes)
        self.recorder = SpikeRecorder() if config.record_spikes else None
        self.timer = (
            SimulatedTimer(config.machine, self.backend) if config.machine else None
        )
        self._injections: dict[int, list[tuple[int, int]]] = {}
        from repro.runtime.collectives import modelled_sync_cost

        self._sync_model_s = modelled_sync_cost(self.backend, config.n_processes)
        self.obs = obs if obs is not None else Observability.off()
        self._bind_instruments()

    def _bind_instruments(self) -> None:
        """Resolve this simulator's instruments from the obs registry.

        Lookups are idempotent, so rebinding against a registry that
        already holds these names (spare-rank takeover, shared bundle)
        continues the existing series instead of restarting them.
        """
        reg = self.obs.registry
        self._m_axons = reg.counter(
            "compass_active_axons_total", help="active axons processed (synapse phase)"
        )
        self._m_fired = reg.counter("compass_fired_total", help="neurons fired")
        self._m_local = reg.counter(
            "compass_local_spikes_total", help="spikes delivered via shared memory"
        )
        self._m_remote = reg.counter(
            "compass_remote_spikes_total",
            help="white-matter spikes aggregated into MPI/PGAS messages",
        )
        self._m_msgs = reg.counter(
            "compass_messages_total", help="aggregated spike messages sent"
        )
        self._m_bytes = reg.counter(
            "compass_bytes_sent_total", help="message payload bytes sent", unit="bytes"
        )
        self._h_msgs_tick = reg.histogram(
            "compass_messages_per_tick",
            buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0),
            help="cluster-wide messages per tick",
        )
        self._h_bytes_send = reg.histogram(
            "compass_bytes_per_send",
            buckets=(64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0),
            help="payload bytes per aggregated send",
            unit="bytes",
        )
        self._h_spikes_core = reg.histogram(
            "compass_spikes_per_core_tick",
            buckets=(0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
            help="neurons fired per core per tick",
        )
        self._g_queue = reg.gauge(
            "compass_mailbox_depth",
            help="pending messages at the start of the receive loop",
        )

    def _attach_tracer(self) -> None:
        """Point backend communication objects at the live tracer.

        Overridden hooks in the backends attach the tracer to the cluster
        and mailboxes; the base implementation is a no-op so construction
        order (cluster is created after ``super().__init__``) stays simple.
        """

    def adopt_obs(self, obs: Observability) -> None:
        """Switch to ``obs``, rebinding instruments and the tracer.

        Used by the resilience driver when a spare-rank takeover rebuilds
        the simulator: the replacement adopts the original bundle so
        metric series and the trace continue across the failure.
        """
        self.obs = obs
        self._bind_instruments()
        self._attach_tracer()

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_network(
        cls,
        network: CoreNetwork,
        n_processes: int = 1,
        record_spikes: bool = False,
        seed: int | None = None,
        config: CompassConfig | None = None,
    ):
        """Convenience constructor.

        ``seed`` is accepted for symmetry with examples but the network's
        own seed is authoritative; passing a different one is an error.
        """
        if seed is not None and seed != network.seed:
            raise ValueError(
                "network randomness is fixed at CoreNetwork construction; "
                f"cannot reseed network(seed={network.seed}) with {seed}"
            )
        if config is None:
            config = CompassConfig(
                n_processes=n_processes, record_spikes=record_spikes
            )
        return cls(network, config)

    # -- external input ----------------------------------------------------------

    def inject(self, gid: int, axon: int, tick: int) -> None:
        """Schedule an external spike to arrive at (gid, axon) at ``tick``."""
        if tick < self.tick:
            raise ValueError(f"cannot inject into past tick {tick} (now {self.tick})")
        self._injections.setdefault(tick, []).append((int(gid), int(axon)))

    def inject_batch(self, gids: np.ndarray, axons: np.ndarray, tick: int) -> None:
        for g, a in zip(np.asarray(gids).ravel(), np.asarray(axons).ravel()):
            self.inject(int(g), int(a), tick)

    def attach_schedule(self, triples) -> None:
        """Queue an iterable of (gid, axon, tick) external input triples.

        Accepts the output of
        :meth:`repro.arch.builder.InputPort.schedule_for` directly.
        """
        for gid, axon, tick in triples:
            self.inject(gid, axon, tick)

    def _apply_injections(self, tick: int) -> None:
        pending = self._injections.pop(tick, None)
        if not pending:
            return
        from repro.arch.params import DELAY_SLOTS

        for gid, axon in pending:
            rank = int(self.partition.rank_of_gid(gid))
            block = self.ranks[rank].block
            block.buffers.pending[gid - block.gid_lo, tick % DELAY_SLOTS, axon] = True

    # -- main loop ------------------------------------------------------------

    def step(self) -> TickMetrics:
        """Advance the whole system by one tick; returns tick metrics."""
        raise NotImplementedError

    def run(self, ticks: int) -> RunResult:
        for _ in range(ticks):
            self.step()
        return RunResult(
            metrics=self.metrics,
            n_neurons=self.network.n_neurons,
            spikes=self.recorder,
        )

    def race_report(self):
        """The sanitizer's findings, or ``None`` when ``sanitize=False``."""
        if self.detector is None:
            return None
        return self.detector.report()

    # -- shared compute phase -------------------------------------------------

    def _compute_phase(
        self, tick: int, tm: TickMetrics
    ) -> tuple[list[dict[int, SpikeBatch]], PhaseTimes]:
        """Synapse + Neuron phases for every rank.

        Returns per-rank outgoing message dicts and host-time accounting.
        """
        host = PhaseTimes()
        per_rank_msgs: list[dict[int, SpikeBatch]] = []
        tr = self.obs.tracer
        pr = self.obs.prof
        for rs in self.ranks:
            if self.detector is not None:
                from repro.runtime.threads import sanitize_thread_writes

                sanitize_thread_writes(
                    self.detector,
                    rs.rank,
                    rs.block.n_cores,
                    self.config.threads_per_process,
                )
            t0 = host_perf_counter()
            counts = rs.block.synapse_phase(tick)
            t1 = host_perf_counter()
            fired = rs.block.neuron_phase(counts)
            if self.recorder is not None:
                cs, ns = np.nonzero(fired)
                self.recorder.record(tick, rs.block.gids[cs], ns)
            out = rs.block.outgoing(fired)
            dest_ranks = np.asarray(self.partition.rank_of_gid(out.tgt_gid))
            local = dest_ranks == rs.rank
            rs.local_buf.push(
                out.tgt_gid[local], out.tgt_axon[local], out.delay[local]
            )
            remote = ~local
            rs.remote_bufs.push(
                dest_ranks[remote],
                out.tgt_gid[remote],
                out.tgt_axon[remote],
                out.delay[remote],
            )
            msgs = rs.remote_bufs.flush(tick)
            per_rank_msgs.append(msgs)
            t2 = host_perf_counter()

            host.synapse += t1 - t0
            host.neuron += t2 - t1
            n_active = rs.block.last_active_axons
            n_fired = int(fired.sum())
            n_local = int(local.sum())
            n_remote = int(remote.sum())
            self._m_axons.inc(rs.rank, n_active)
            self._m_fired.inc(rs.rank, n_fired)
            self._m_local.inc(rs.rank, n_local)
            self._m_remote.inc(rs.rank, n_remote)
            self._h_spikes_core.observe(rs.rank, n_fired / rs.block.n_cores)
            if pr.enabled:
                # Host-only measurement: the profile consumes the host
                # timings and counts, never the other way around.
                pr.phase("synapse", rs.rank, t1 - t0, active_axons=n_active)
                pr.phase(
                    "neuron", rs.rank, t2 - t1, fired=n_fired, messages=len(msgs)
                )
            if tr.enabled:
                tr.span(
                    "compute",
                    rank=rs.rank,
                    phase="compute",
                    tick=tick,
                    active_axons=n_active,
                    fired=n_fired,
                    local_spikes=n_local,
                    remote_spikes=n_remote,
                )
                tr.span(
                    "synapse", rank=rs.rank, phase="synapse", tick=tick,
                    active_axons=n_active,
                )
                tr.span(
                    "neuron", rank=rs.rank, phase="neuron", tick=tick,
                    fired=n_fired, messages=len(msgs),
                )
                if self.config.threads_per_process > 1:
                    from repro.runtime.threads import trace_thread_slices

                    trace_thread_slices(
                        tr,
                        rs.rank,
                        rs.block.n_cores,
                        self.config.threads_per_process,
                        tick=tick,
                    )
            tm.active_axons += n_active
            tm.neurons_evaluated += rs.block.n_cores * rs.block.num_neurons
            tm.fired += n_fired
            tm.local_spikes += n_local
            tm.remote_spikes += n_remote
            if self.timer is not None:
                self.timer.rank_compute(
                    rs.block.last_active_axons,
                    rs.block.n_cores * rs.block.num_neurons,
                    n_remote,
                    len(msgs),
                    rs.working_set_bytes,
                )
        return per_rank_msgs, host


class Compass(CompassBase):
    """MPI-backend Compass simulator (the paper's primary implementation)."""

    backend = "mpi"

    def __init__(
        self,
        network: CoreNetwork,
        config: CompassConfig | None = None,
        partition=None,
        sanitize: bool = False,
        obs: Observability | None = None,
    ) -> None:
        from repro.runtime.mpi import VirtualMpiCluster

        config = config or CompassConfig()
        super().__init__(network, config, partition, sanitize=sanitize, obs=obs)
        self.cluster = VirtualMpiCluster(config.n_processes, sanitizer=self.detector)
        self._attach_tracer()

    def _attach_tracer(self) -> None:
        tracer = self.obs.tracer if self.obs.tracer.enabled else None
        self.cluster.tracer = tracer
        for mailbox in self.cluster.mailboxes:
            mailbox.tracer = tracer

    def step(self) -> TickMetrics:
        tick = self.tick
        tr = self.obs.tracer
        pr = self.obs.prof
        if tr.enabled:
            tr.begin_tick(tick)
        if self.timer is not None:
            self.timer.reset_tick()
        self._apply_injections(tick)
        tm = TickMetrics(tick=tick)

        # Synapse + Neuron phases, then master-thread Isends.
        per_rank_msgs, host = self._compute_phase(tick, tm)
        send_counts = np.zeros(
            (self.config.n_processes, self.config.n_processes), dtype=np.int64
        )
        for rs, msgs in zip(self.ranks, per_rank_msgs):
            ep = self.cluster.endpoints[rs.rank]
            for dest, batch in msgs.items():
                ep.isend(dest, batch, batch.nbytes)
                send_counts[rs.rank, dest] += 1
                tm.messages += 1
                tm.bytes_sent += batch.nbytes
                self._m_msgs.inc(rs.rank)
                self._m_bytes.inc(rs.rank, batch.nbytes)
                self._h_bytes_send.observe(rs.rank, batch.nbytes)

        # Network phase: Reduce-Scatter, local delivery, receive loop.
        t0 = host_perf_counter()
        for rs in self.ranks:
            self.cluster.endpoints[rs.rank].reduce_scatter(send_counts[rs.rank])
        recv_counts = [
            self.cluster.endpoints[r].reduce_scatter_fetch()
            for r in range(self.config.n_processes)
        ]
        self.cluster.reduce_scatter_finish()
        if pr.enabled:
            # The lock-step loop executes the collective for all ranks in
            # one serial pass; apportion its host cost evenly per rank.
            sync_s = (host_perf_counter() - t0) / self.config.n_processes
            for rs in self.ranks:
                pr.phase(
                    "sync",
                    rs.rank,
                    sync_s,
                    sent=int(send_counts[rs.rank].sum()),
                    expected=int(recv_counts[rs.rank]),
                )
        if tr.enabled:
            for rs in self.ranks:
                tr.span(
                    "sync",
                    rank=rs.rank,
                    phase="sync",
                    tick=tick,
                    sent=int(send_counts[rs.rank].sum()),
                    expected=int(recv_counts[rs.rank]),
                    model_s=self._sync_model_s,
                )

        for rs in self.ranks:
            tn0 = host_perf_counter() if pr.enabled else 0.0
            ep = self.cluster.endpoints[rs.rank]
            self._g_queue.set(rs.rank, ep.pending())
            gids, axons, delays = rs.local_buf.drain()
            rs.block.deliver(gids, axons, delays, tick)
            spikes_received = 0
            bytes_received = 0
            n_msgs = recv_counts[rs.rank]
            # Spike delivery is a bitwise OR into axon buffers (§VII-A),
            # so consuming wildcard receives in arrival order is
            # commutative — declare it, or the sanitizer would flag
            # every multi-sender tick.
            with (
                self.detector.commutative_delivery()
                if self.detector is not None
                else nullcontext()
            ):
                for _ in range(n_msgs):
                    if not ep.iprobe():
                        # Message-loss detection: the count collective is
                        # the ground truth, so an empty mailbox here means
                        # the wire dropped a promised message (injected
                        # fault) — surface it as a detectable failure.
                        raise MessageLossError(
                            f"rank {rs.rank}: Reduce-Scatter promised a message "
                            "that never arrived"
                        )
                    msg = ep.recv(commutative=True)
                    batch: SpikeBatch = msg.payload
                    rs.block.deliver(batch.tgt_gid, batch.tgt_axon, batch.delay, tick)
                    spikes_received += batch.count
                    bytes_received += batch.nbytes
            if self.timer is not None:
                self.timer.rank_network(
                    self.config.n_processes,
                    gids.size,
                    n_msgs,
                    spikes_received,
                    bytes_received,
                    rs.working_set_bytes,
                )
            if pr.enabled:
                pr.phase(
                    "network",
                    rs.rank,
                    host_perf_counter() - tn0,
                    messages=int(n_msgs),
                    spikes_received=spikes_received,
                    local_delivered=int(gids.size),
                )
            if tr.enabled:
                tr.span(
                    "network",
                    rank=rs.rank,
                    phase="network",
                    tick=tick,
                    messages=n_msgs,
                    spikes_received=spikes_received,
                    bytes_received=bytes_received,
                    local_delivered=int(gids.size),
                )
        host.network += host_perf_counter() - t0

        self.metrics.host += host
        if self.timer is not None:
            self.metrics.simulated += self.timer.tick_times()
        self.metrics.record_tick(tm)
        self._h_msgs_tick.observe(-1, tm.messages)
        if tr.enabled:
            tr.tick_summary(
                tick,
                fired=tm.fired,
                spikes=tm.local_spikes + tm.remote_spikes,
                neurons=tm.neurons_evaluated,
                active_axons=tm.active_axons,
            )
        self.tick += 1
        return tm
