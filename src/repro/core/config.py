"""Run configuration for the Compass simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.machine import BLUE_GENE_Q, MachineConfig
from repro.util.validation import check_positive


@dataclass(frozen=True)
class CompassConfig:
    """Everything about *how* to run (the model itself says *what* to run).

    Attributes
    ----------
    n_processes:
        Number of simulated MPI ranks the model is partitioned across.
    threads_per_process:
        OpenMP team size per rank.  The functional result never depends on
        it; it feeds the simulated timing model and the per-thread metrics.
    machine:
        Optional machine configuration used to convert event counts into
        simulated wall-clock phase times.  ``None`` disables time modelling
        (functional runs and unit tests).
    record_spikes:
        Record every (tick, gid, neuron) firing — needed for rasters and
        the partition-invariance regression tests; costs memory.
    """

    n_processes: int = 1
    threads_per_process: int = 1
    machine: MachineConfig | None = None
    record_spikes: bool = False

    def __post_init__(self) -> None:
        check_positive("n_processes", self.n_processes)
        check_positive("threads_per_process", self.threads_per_process)

    @classmethod
    def for_blue_gene_q(
        cls,
        nodes: int,
        procs_per_node: int = 1,
        threads_per_proc: int = 32,
        record_spikes: bool = False,
    ) -> "CompassConfig":
        """The paper's standard BG/Q geometry: 1 proc/node × 32 threads."""
        mc = MachineConfig(
            machine=BLUE_GENE_Q,
            nodes=nodes,
            procs_per_node=procs_per_node,
            threads_per_proc=threads_per_proc,
        )
        return cls(
            n_processes=mc.n_processes,
            threads_per_process=threads_per_proc,
            machine=mc,
            record_spikes=record_spikes,
        )
