"""Per-rank profiling and load-imbalance analysis.

§VI-B attributes part of the weak-scaling runtime growth to "computation
and communication imbalances in the functional regions of the CoCoMac
model".  This module surfaces those imbalances for any run: per-rank
spike/axon/message counters, max/mean imbalance factors, and a formatted
report, so users can see which regions (ranks) bound each phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.simulator import CompassBase
from repro.perf.report import format_table
from repro.util.stats import max_over_mean


@dataclass(frozen=True)
class RankProfile:
    """Cumulative counters of one rank after a run."""

    rank: int
    cores: int
    neurons: int
    fired: int
    active_axons: int
    local_spikes: int
    remote_spikes: int
    messages_sent: int
    messages_received: int
    bytes_sent: int


@dataclass(frozen=True)
class ImbalanceSummary:
    """Max/mean ratios per load dimension (1.0 = perfectly balanced)."""

    fired: float
    active_axons: float
    remote_spikes: float
    messages_received: float

    @property
    def worst(self) -> float:
        return max(self.fired, self.active_axons, self.remote_spikes,
                   self.messages_received)


def profile_ranks(sim: CompassBase) -> list[RankProfile]:
    """Collect per-rank profiles from a simulator after (or during) a run.

    Spike and axon counters come from the simulator's metric registry
    (``repro.obs``) — the registry-backed instruments that replaced the
    per-rank ``cum_*`` fields — so a profile taken after a checkpoint
    rollback reflects the restored state, not the abandoned segment.
    """
    reg = sim.obs.registry
    fired = reg.counter("compass_fired_total")
    axons = reg.counter("compass_active_axons_total")
    local = reg.counter("compass_local_spikes_total")
    remote = reg.counter("compass_remote_spikes_total")
    profiles = []
    for rs in sim.ranks:
        counters = getattr(sim, "cluster", None)
        if counters is not None and hasattr(counters, "counters"):
            c = counters.counters[rs.rank]
            sent = getattr(c, "messages_sent", getattr(c, "puts", 0))
            received = getattr(c, "messages_received", 0)
            nbytes = getattr(c, "bytes_sent", getattr(c, "bytes_put", 0))
        else:  # pragma: no cover - all backends expose counters
            sent = received = nbytes = 0
        profiles.append(
            RankProfile(
                rank=rs.rank,
                cores=rs.block.n_cores,
                neurons=rs.block.n_cores * rs.block.num_neurons,
                fired=int(fired.value(rs.rank)),
                active_axons=int(axons.value(rs.rank)),
                local_spikes=int(local.value(rs.rank)),
                remote_spikes=int(remote.value(rs.rank)),
                messages_sent=sent,
                messages_received=received,
                bytes_sent=nbytes,
            )
        )
    return profiles


def imbalance(profiles: list[RankProfile]) -> ImbalanceSummary:
    """Max/mean load ratios across ranks.

    End-of-run counterpart of the per-tick heatmap in
    :mod:`repro.obs.analysis.imbalance`; both share
    :func:`repro.util.stats.max_over_mean`.
    """
    return ImbalanceSummary(
        fired=max_over_mean([p.fired for p in profiles]),
        active_axons=max_over_mean([p.active_axons for p in profiles]),
        remote_spikes=max_over_mean([p.remote_spikes for p in profiles]),
        messages_received=max_over_mean([p.messages_received for p in profiles]),
    )


def profile_report(sim: CompassBase, region_of_rank=None) -> str:
    """Formatted per-rank profile table plus imbalance summary.

    ``region_of_rank`` optionally maps rank -> region label (e.g. from a
    :class:`~repro.compiler.pcc.CompiledModel` partition).
    """
    profiles = profile_ranks(sim)
    rows = []
    for p in profiles:
        label = region_of_rank(p.rank) if region_of_rank else ""
        rows.append(
            (
                p.rank,
                label,
                p.cores,
                p.fired,
                p.active_axons,
                p.local_spikes,
                p.remote_spikes,
                p.messages_received,
            )
        )
    headers = [
        "rank", "region", "cores", "fired", "axons", "local", "remote", "msgs_in",
    ]
    table = format_table(headers, rows, title="per-rank load profile")
    imb = imbalance(profiles)
    table += (
        f"\nimbalance (max/mean): fired {imb.fired:.2f}, "
        f"axons {imb.active_axons:.2f}, remote {imb.remote_spikes:.2f}, "
        f"msgs_in {imb.messages_received:.2f}"
    )
    return table
