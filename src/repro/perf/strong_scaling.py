"""Strong scaling reproduction — Fig 5.

"... we fixed the CoCoMac model size at 32M TrueNorth cores (8.2B neurons)
while increasing the available Blue Gene/Q CPU count.  Simulating 32M
cores takes 324 seconds on 16384 Blue Gene/Q CPUs (1 rack; the baseline),
47 seconds on 131072 CPUs (8 racks; a speed-up of 6.9×), and 37 seconds on
262144 CPUs (16 racks; a speed-up of 8.8×)."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cocomac.model import build_macaque_coreobject
from repro.core.metrics import PhaseTimes
from repro.perf.costmodel import phase_times_mpi, run_times
from repro.perf.traffic import CocomacTraffic
from repro.runtime.machine import BLUE_GENE_Q, MachineConfig, MachineSpec

FIXED_CORES = 32 * 2**20  #: 32M TrueNorth cores
DEFAULT_RACKS = (1, 2, 4, 8, 16)
TICKS = 500


@dataclass
class StrongScalingPoint:
    racks: float
    nodes: int
    cpus: int
    cores_per_node: float
    times: PhaseTimes
    speedup: float = 1.0  #: vs the 1-rack baseline, filled by the series


def strong_scaling_series(
    total_cores: int = FIXED_CORES,
    racks: tuple[int, ...] = DEFAULT_RACKS,
    ticks: int = TICKS,
    threads: int = 32,
    machine: MachineSpec = BLUE_GENE_Q,
    seed: int = 0,
) -> list[StrongScalingPoint]:
    """The full Fig 5 sweep over a fixed model size."""
    model = build_macaque_coreobject(total_cores, seed=seed)
    traffic = CocomacTraffic(model)
    points: list[StrongScalingPoint] = []
    for r in racks:
        nodes = machine.nodes_per_rack * r
        ts = traffic.summary(n_processes=nodes)
        mc = MachineConfig(
            machine, nodes=nodes, procs_per_node=1, threads_per_proc=threads
        )
        per_tick = phase_times_mpi(ts, mc)
        points.append(
            StrongScalingPoint(
                racks=nodes / machine.nodes_per_rack,
                nodes=nodes,
                cpus=nodes * machine.cpu_cores_per_node,
                cores_per_node=total_cores / nodes,
                times=run_times(per_tick, ticks),
            )
        )
    baseline = points[0].times.total
    for p in points:
        p.speedup = baseline / p.times.total
    return points
