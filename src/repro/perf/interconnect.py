"""Interconnect feasibility analysis (§VI-B's bandwidth argument).

The paper argues the spike traffic is communication-feasible because "the
overall message data volume per simulated tick ... is well below the
interconnect bandwidth of the communication subsystem".  This module makes
that argument quantitative for any configuration: processes are mapped to
torus nodes, expected traffic is spread over the expected route lengths,
and per-link utilisation is compared against link bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.traffic import TrafficSummary
from repro.runtime.machine import MachineSpec
from repro.runtime.torus import TorusTopology
from repro.util.units import TICK_SECONDS


@dataclass(frozen=True)
class InterconnectLoad:
    """Expected per-tick load on the torus for one configuration."""

    nodes: int
    torus: tuple[int, ...]
    mean_hops: float
    bytes_per_tick: float
    link_byte_ticks: float  #: total byte-hops spread over all links
    links: int
    utilisation: float  #: fraction of per-link bandwidth consumed per tick

    @property
    def feasible(self) -> bool:
        """Can a tick's traffic drain within one real-time tick?"""
        return self.utilisation < 1.0


def interconnect_load(
    ts: TrafficSummary, machine: MachineSpec, nodes: int
) -> InterconnectLoad:
    """Spread a tick's expected traffic over the machine's torus.

    Uniform-random process placement is assumed (the paper does not map
    regions topologically), so the expected route length is the torus's
    mean hop count and traffic spreads evenly over all links.
    """
    torus = TorusTopology.for_nodes(nodes, machine.torus_dims)
    mean_hops = max(torus.mean_hops(), 1.0)
    # Every byte occupies one link per hop.
    byte_hops = ts.bytes_per_tick * mean_hops
    links = nodes * machine.links_per_node
    per_link = byte_hops / links
    # Real time allows TICK_SECONDS of transfer per tick.
    utilisation = per_link / (machine.link_bandwidth * TICK_SECONDS)
    return InterconnectLoad(
        nodes=nodes,
        torus=torus.dims,
        mean_hops=mean_hops,
        bytes_per_tick=ts.bytes_per_tick,
        link_byte_ticks=byte_hops,
        links=links,
        utilisation=utilisation,
    )
