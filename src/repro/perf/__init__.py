"""Performance reproduction: regenerate every figure of §VI and §VII.

The functional simulator is exact but laptop-bound; the paper's evaluation
ran on up to 262144 CPUs.  This package reproduces the evaluation *shape*
by combining:

* the real CoCoMac-derived connection matrix (so message-count
  sub-linearity and regional imbalance emerge from the actual workload
  rather than from curve fitting) — :mod:`repro.perf.traffic`;
* the calibrated per-machine cost models of :mod:`repro.runtime.timing` —
  driven per region and per phase by :mod:`repro.perf.costmodel`;
* one driver per experiment: weak scaling (Fig 4a/4b), strong scaling
  (Fig 5), thread scaling (Fig 6), PGAS-vs-MPI real time (Fig 7), plus
  the headline scale table, PCC compile-time model, and the power
  estimate use-case.
"""

from repro.perf.traffic import CocomacTraffic, TrafficSummary, SyntheticTraffic
from repro.perf.costmodel import phase_times_mpi, phase_times_pgas
from repro.perf.weak_scaling import weak_scaling_series, WeakScalingPoint
from repro.perf.strong_scaling import strong_scaling_series, StrongScalingPoint
from repro.perf.thread_scaling import (
    thread_scaling_series,
    procs_threads_tradeoff,
    ThreadScalingPoint,
)
from repro.perf.realtime import realtime_series, max_realtime_cores, RealtimePoint
from repro.perf.headline import headline_summary
from repro.perf.power import truenorth_power_watts, blue_gene_power_watts
from repro.perf.report import format_table

__all__ = [
    "CocomacTraffic",
    "TrafficSummary",
    "SyntheticTraffic",
    "phase_times_mpi",
    "phase_times_pgas",
    "weak_scaling_series",
    "WeakScalingPoint",
    "strong_scaling_series",
    "StrongScalingPoint",
    "thread_scaling_series",
    "procs_threads_tradeoff",
    "ThreadScalingPoint",
    "realtime_series",
    "max_realtime_cores",
    "RealtimePoint",
    "headline_summary",
    "truenorth_power_watts",
    "blue_gene_power_watts",
    "format_table",
]
