"""PGAS vs MPI real-time comparison — Fig 7 (§VII).

The paper's protocol: find the largest system simulable in real time on
four Blue Gene/P racks (81K cores under PGAS), then strong-scale the same
system down to one rack, reporting for each point the best-performing
thread configuration per implementation.  The reported result: PGAS runs
1000 ticks in 1 second on four racks; MPI takes 2.1× as long.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import PhaseTimes
from repro.perf.costmodel import phase_times_mpi, phase_times_pgas
from repro.perf.traffic import SyntheticTraffic
from repro.runtime.machine import BLUE_GENE_P, MachineConfig, MachineSpec

#: Fig 7's system size: 81K TrueNorth cores.
REALTIME_CORES = 81920
DEFAULT_RACKS = (1, 2, 4)
TICKS = 1000

#: Candidate (procs_per_node, threads_per_proc) configurations on BG/P.
MPI_CONFIGS = ((1, 4), (2, 2), (4, 1))
#: "For all configurations, we show the result for the PGAS implementation
#: with four UPC instances (each having one thread) per node."
PGAS_CONFIGS = ((4, 1),)


@dataclass
class RealtimePoint:
    backend: str
    racks: float
    nodes: int
    cpus: int
    procs_per_node: int
    threads_per_proc: int
    seconds: float  #: wall time for TICKS ticks
    per_tick: PhaseTimes

    @property
    def realtime(self) -> bool:
        """1000 ticks within one second = real time."""
        return self.seconds <= TICKS * 1e-3 * 1.05  # 5% measurement slack


def _evaluate(
    backend: str,
    traffic: SyntheticTraffic,
    machine: MachineSpec,
    nodes: int,
    ppn: int,
    tpp: int,
    ticks: int,
) -> RealtimePoint:
    ts = traffic.summary(nodes, ppn)
    mc = MachineConfig(machine, nodes=nodes, procs_per_node=ppn, threads_per_proc=tpp)
    per_tick = phase_times_mpi(ts, mc) if backend == "mpi" else phase_times_pgas(ts, mc)
    return RealtimePoint(
        backend=backend,
        racks=nodes / machine.nodes_per_rack,
        nodes=nodes,
        cpus=nodes * machine.cpu_cores_per_node,
        procs_per_node=ppn,
        threads_per_proc=tpp,
        seconds=per_tick.total * ticks,
        per_tick=per_tick,
    )


def realtime_series(
    n_cores: int = REALTIME_CORES,
    racks: tuple[int, ...] = DEFAULT_RACKS,
    machine: MachineSpec = BLUE_GENE_P,
    rate_hz: float = 10.0,
    local_fraction: float = 0.75,
    ticks: int = TICKS,
) -> list[RealtimePoint]:
    """Fig 7: best-config MPI and PGAS times per rack count."""
    traffic = SyntheticTraffic(n_cores, rate_hz, local_fraction)
    points: list[RealtimePoint] = []
    for r in racks:
        nodes = machine.nodes_per_rack * r
        best_mpi = min(
            (
                _evaluate("mpi", traffic, machine, nodes, ppn, tpp, ticks)
                for ppn, tpp in MPI_CONFIGS
            ),
            key=lambda p: p.seconds,
        )
        best_pgas = min(
            (
                _evaluate("pgas", traffic, machine, nodes, ppn, tpp, ticks)
                for ppn, tpp in PGAS_CONFIGS
            ),
            key=lambda p: p.seconds,
        )
        points.extend([best_pgas, best_mpi])
    return points


def max_realtime_cores(
    backend: str = "pgas",
    racks: int = 4,
    machine: MachineSpec = BLUE_GENE_P,
    rate_hz: float = 10.0,
    local_fraction: float = 0.75,
    tolerance: int = 1024,
) -> int:
    """Largest core count simulable in real time (bisection over sizes).

    The paper's protocol step one: "We began by finding the largest size
    of system we could simulate in real time on all four racks."
    """
    nodes = machine.nodes_per_rack * racks
    configs = PGAS_CONFIGS if backend == "pgas" else MPI_CONFIGS

    def tick_seconds(cores: int) -> float:
        traffic = SyntheticTraffic(cores, rate_hz, local_fraction)
        return min(
            _evaluate(backend, traffic, machine, nodes, ppn, tpp, 1).seconds
            for ppn, tpp in configs
        )

    lo, hi = tolerance, tolerance
    while tick_seconds(hi) <= 1e-3:
        lo, hi = hi, hi * 2
        if hi > 2**28:  # safety rail
            return hi
    while hi - lo > tolerance:
        mid = (lo + hi) // 2
        if tick_seconds(mid) <= 1e-3:
            lo = mid
        else:
            hi = mid
    return lo
