"""Expected spike/message traffic at arbitrary scale.

For paper-scale configurations (millions of cores, thousands of processes)
we cannot run the functional simulator, but the *expected* per-tick traffic
is fully determined by the CoCoMac connection matrix, the firing-rate
model, and the process layout:

* a connection from region *i* to region *j* is one neuron output firing
  at the white-matter rate; with diffuse targeting (§V-B) its endpoints
  are uniform over the two regions' processes, so spikes on a process
  pair are Poisson with rate ``C[i,j] · ρ_w / (n_i · n_j)`` per tick;
* with per-pair aggregation (§III), the expected MPI message count is the
  expected number of process pairs with at least one spike:
  ``Σ_{i≠j} n_i n_j (1 − exp(−λ_ij))`` — which is what makes the paper's
  Fig 4(b) message growth sub-linear: links get thinner as regions spread
  over more processes;
* gray matter stays process-local by construction (§V-C).

Rate model: the paper reports a *mean* rate of 8.1 Hz and ~22 M
white-matter spikes per tick at 256 M cores.  Those two facts fix a rate
split: white-matter connections fire at ``ρ_w ≈ 0.53 Hz`` and gray-matter
connections at whatever brings the mean to 8.1 Hz (long-range projection
activity is far sparser than local activity).  Both knobs are explicit
parameters recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.params import NUM_NEURONS
from repro.cocomac.model import MacaqueModel
from repro.util.units import SPIKE_BYTES

#: Simulation state bytes per core held by a Compass process: packed
#: crossbar (8 KiB), axon types, delay buffers, potentials, PRNG state,
#: targets, and neuron parameters (matches CoreBlock's working_set).
PER_CORE_STATE_BYTES = 8192 + 256 + 4096 + 1024 + 2048 + 4096 + 2048 + 1024 + 3072


@dataclass
class TrafficSummary:
    """Expected per-tick traffic for one process layout.

    Per-region arrays describe the load of *one process of that region* —
    the semi-synchronous loop is bounded by the slowest process, so phase
    times take maxima over these arrays (§VI-B attributes part of the weak
    scaling growth to regional imbalance).
    """

    n_processes: int
    procs_per_region: np.ndarray  # (R,)
    # Totals over the whole machine, per tick:
    total_spikes: float
    white_spikes: float
    messages: float
    bytes_sent: float
    # Per-process expectations, by region:
    neurons_pp: np.ndarray
    active_axons_pp: np.ndarray
    local_spikes_pp: np.ndarray
    remote_sent_pp: np.ndarray
    messages_sent_pp: np.ndarray
    messages_recv_pp: np.ndarray
    spikes_recv_pp: np.ndarray
    working_set_pp: np.ndarray

    @property
    def bytes_per_tick(self) -> float:
        return self.bytes_sent

    def mean_neurons_pp(self) -> float:
        return float(
            (self.neurons_pp * self.procs_per_region).sum() / self.n_processes
        )


def _apportion_processes(cores: np.ndarray, n_processes: int) -> np.ndarray:
    """Processes per region ∝ cores, each region ≥ 1 (cf. §V)."""
    cores = np.asarray(cores, dtype=float)
    if n_processes < cores.size:
        raise ValueError(
            f"need at least one process per region: {n_processes} < {cores.size}"
        )
    share = cores / cores.sum() * n_processes
    procs = np.maximum(1, np.floor(share)).astype(np.int64)
    while procs.sum() < n_processes:
        procs[np.argmax(share - procs)] += 1
    while procs.sum() > n_processes:
        over = np.where(procs > 1)[0]
        procs[over[np.argmin((share - procs)[over])]] -= 1
    return procs


class CocomacTraffic:
    """Traffic model over a macaque model's connection matrix."""

    def __init__(
        self,
        model: MacaqueModel,
        mean_rate_hz: float = 8.1,
        white_rate_hz: float = 0.53,
        diffuse: bool = True,
        aggregate: bool = True,
    ) -> None:
        self.model = model
        self.mean_rate_hz = mean_rate_hz
        self.white_rate_hz = white_rate_hz
        self.diffuse = diffuse
        self.aggregate = aggregate

        counts = model.connection_counts.astype(float)
        self._white = counts.copy()
        np.fill_diagonal(self._white, 0.0)
        self._gray = np.diag(counts).astype(float).copy()
        w_total = self._white.sum()
        g_total = self._gray.sum()
        # Solve for the gray rate that yields the requested mean rate.
        total = w_total + g_total
        if g_total > 0:
            self.gray_rate_hz = (
                mean_rate_hz * total - white_rate_hz * w_total
            ) / g_total
        else:
            self.gray_rate_hz = 0.0
        if self.gray_rate_hz < 0:
            raise ValueError(
                "white_rate_hz too high to achieve the requested mean rate"
            )

    def summary(self, n_processes: int) -> TrafficSummary:
        """Expected traffic with ``n_processes`` Compass processes.

        The paper's runs fix the simulated core count per node, so compute
        load is uniform by construction; region membership matters only
        for communication.  Processes per region are therefore *fractional*
        (``cores_i / cores_per_process``) — the smooth limit of the
        region-aligned layout, free of apportionment granularity noise.
        """
        model = self.model
        cores = model.cores.astype(float)
        cores_per_proc = cores.sum() / n_processes
        procs = cores / cores_per_proc  # fractional processes per region

        # Spike flows per tick (expected).
        white_flow = self._white * (self.white_rate_hz / 1000.0)  # (R, R)
        gray_flow = self._gray * (self.gray_rate_hz / 1000.0)  # (R,)
        white_total = float(white_flow.sum())
        gray_total = float(gray_flow.sum())

        # Message count: process pairs with >= 1 spike this tick.
        n_i = procs.astype(float)
        pairs = np.outer(n_i, n_i)
        if self.diffuse:
            with np.errstate(divide="ignore", invalid="ignore"):
                lam = np.where(pairs > 0, white_flow / pairs, 0.0)
            msgs_matrix = pairs * (1.0 - np.exp(-lam))
        else:
            # Focused targeting: each source process locks onto a single
            # target process, concentrating the flow on n_i links.
            lam = np.where(n_i[:, None] > 0, white_flow / n_i[:, None], 0.0)
            msgs_matrix = n_i[:, None] * (1.0 - np.exp(-lam))
        np.fill_diagonal(msgs_matrix, 0.0)
        if not self.aggregate:
            # Ablation: one message per spike instead of per process pair.
            msgs_matrix = white_flow.copy()
            np.fill_diagonal(msgs_matrix, 0.0)
        messages = float(msgs_matrix.sum())

        # Per-process expectations, by region.  Compute-side quantities are
        # uniform (fixed cores per process); communication varies by region.
        neurons_pp = np.full_like(procs, cores_per_proc * NUM_NEURONS)
        remote_sent_pp = white_flow.sum(axis=1) / procs
        spikes_recv_pp = white_flow.sum(axis=0) / procs
        local_pp = gray_flow / procs
        # Every delivered spike activates exactly one axon at its due tick.
        active_axons_pp = local_pp + spikes_recv_pp
        msgs_sent_pp = msgs_matrix.sum(axis=1) / procs
        msgs_recv_pp = msgs_matrix.sum(axis=0) / procs
        working_set_pp = np.full_like(procs, cores_per_proc * PER_CORE_STATE_BYTES)

        return TrafficSummary(
            n_processes=int(n_processes),
            procs_per_region=procs,
            total_spikes=white_total + gray_total,
            white_spikes=white_total,
            messages=messages,
            bytes_sent=white_total * SPIKE_BYTES,
            neurons_pp=neurons_pp,
            active_axons_pp=active_axons_pp,
            local_spikes_pp=local_pp,
            remote_sent_pp=remote_sent_pp,
            messages_sent_pp=msgs_sent_pp,
            messages_recv_pp=msgs_recv_pp,
            spikes_recv_pp=spikes_recv_pp,
            working_set_pp=working_set_pp,
        )


class SyntheticTraffic:
    """The §VII real-time workload: uniform cores, fixed locality split.

    "75% of the neurons in each TrueNorth core connect to TrueNorth cores
    on the same Blue Gene/P node, while the remaining 25% connect to
    TrueNorth cores on other nodes.  All neurons fire on average at 10 Hz."
    """

    def __init__(
        self,
        n_cores: int,
        rate_hz: float = 10.0,
        node_local_fraction: float = 0.75,
    ) -> None:
        self.n_cores = n_cores
        self.rate_hz = rate_hz
        self.node_local_fraction = node_local_fraction

    def summary(self, nodes: int, procs_per_node: int) -> TrafficSummary:
        p = nodes * procs_per_node
        neurons_total = self.n_cores * NUM_NEURONS
        spikes = neurons_total * self.rate_hz / 1000.0
        # Node-local targets are uniform over the node's cores, so the
        # process-local share of node-local traffic is 1/procs_per_node.
        proc_local = spikes * self.node_local_fraction / procs_per_node
        remote = spikes - proc_local
        # Remote spikes spread uniformly over the other processes.
        lam = remote / p / max(p - 1, 1)
        messages = p * max(p - 1, 1) * (1.0 - np.exp(-lam))

        ones = np.ones(1)
        return TrafficSummary(
            n_processes=p,
            procs_per_region=np.array([p]),
            total_spikes=spikes,
            white_spikes=remote,
            messages=float(messages),
            bytes_sent=remote * SPIKE_BYTES,
            neurons_pp=ones * neurons_total / p,
            active_axons_pp=ones * spikes / p,
            local_spikes_pp=ones * proc_local / p,
            remote_sent_pp=ones * remote / p,
            messages_sent_pp=ones * messages / p,
            messages_recv_pp=ones * messages / p,
            spikes_recv_pp=ones * remote / p,
            working_set_pp=ones * self.n_cores * PER_CORE_STATE_BYTES / p,
        )
