"""Weak scaling reproduction — Fig 4(a) and Fig 4(b).

"Figure 4 shows the results of experiments in which we increased the
CoCoMac model size when increasing the available Blue Gene/Q CPU count,
while at the same time fixing the count of simulated TrueNorth cores per
node at 16384.  We ran with 1 MPI process per node and 32 OpenMP threads
per MPI process."  500 simulated ticks per point; the largest point is
256M cores on 16384 nodes (262144 CPUs), taking 194 s = 388× real time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cocomac.model import build_macaque_coreobject
from repro.core.metrics import PhaseTimes
from repro.perf.costmodel import phase_times_mpi, run_times
from repro.perf.traffic import CocomacTraffic
from repro.runtime.machine import BLUE_GENE_Q, MachineConfig, MachineSpec

#: The paper's sweep: 1, 2, 4, 8, 16 racks of Blue Gene/Q.
DEFAULT_RACKS = (1, 2, 4, 8, 16)
CORES_PER_NODE = 16384
TICKS = 500


@dataclass
class WeakScalingPoint:
    """One point of the Fig 4 sweep."""

    racks: float
    nodes: int
    cpus: int
    cores: int
    neurons: int
    ticks: int
    times: PhaseTimes  #: whole-run phase breakdown (Fig 4a)
    messages_per_tick: float  #: Fig 4b, message series
    spikes_per_tick: float  #: Fig 4b, white-matter spike series
    bytes_per_tick: float
    mean_rate_hz: float

    @property
    def slowdown(self) -> float:
        """Wall time over simulated time (388× at the largest point)."""
        return self.times.total / (self.ticks * 1e-3)


def weak_scaling_point(
    nodes: int,
    cores_per_node: int = CORES_PER_NODE,
    ticks: int = TICKS,
    threads: int = 32,
    machine: MachineSpec = BLUE_GENE_Q,
    seed: int = 0,
) -> WeakScalingPoint:
    """Evaluate one weak-scaling configuration through the model."""
    total_cores = nodes * cores_per_node
    model = build_macaque_coreobject(total_cores, seed=seed)
    traffic = CocomacTraffic(model)
    ts = traffic.summary(n_processes=nodes)
    mc = MachineConfig(machine, nodes=nodes, procs_per_node=1, threads_per_proc=threads)
    per_tick = phase_times_mpi(ts, mc)
    return WeakScalingPoint(
        racks=nodes / machine.nodes_per_rack,
        nodes=nodes,
        cpus=nodes * machine.cpu_cores_per_node,
        cores=total_cores,
        neurons=total_cores * 256,
        ticks=ticks,
        times=run_times(per_tick, ticks),
        messages_per_tick=ts.messages,
        spikes_per_tick=ts.white_spikes,
        bytes_per_tick=ts.bytes_per_tick,
        mean_rate_hz=traffic.mean_rate_hz,
    )


def weak_scaling_series(
    racks: tuple[int, ...] = DEFAULT_RACKS,
    cores_per_node: int = CORES_PER_NODE,
    ticks: int = TICKS,
    threads: int = 32,
    machine: MachineSpec = BLUE_GENE_Q,
    seed: int = 0,
) -> list[WeakScalingPoint]:
    """The full Fig 4 sweep."""
    return [
        weak_scaling_point(
            machine.nodes_per_rack * r, cores_per_node, ticks, threads, machine, seed
        )
        for r in racks
    ]
