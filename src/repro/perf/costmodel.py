"""Convert expected traffic into per-tick phase times.

The semi-synchronous main loop is bounded each tick by the slowest
process, so each phase time is the *maximum* over the per-region process
workloads of a :class:`~repro.perf.traffic.TrafficSummary` — this is where
the paper's "computation and communication imbalances in the functional
regions" (§VI-B) enter the model.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import PhaseTimes
from repro.perf.traffic import TrafficSummary
from repro.runtime.machine import MachineConfig


def phase_times_mpi(
    ts: TrafficSummary,
    mc: MachineConfig,
    overlap: bool = True,
) -> PhaseTimes:
    """Per-tick Synapse/Neuron/Network times for the MPI backend."""
    cost = mc.machine.cost
    threads = mc.effective_threads
    # Processes on one node share its last-level cache: the memory factor
    # is governed by the node-aggregate working set.
    mem = np.array(
        [cost.memory_factor(w * mc.procs_per_node) for w in ts.working_set_pp]
    )

    synapse = max(
        cost.synapse_time(a, threads, m)
        for a, m in zip(ts.active_axons_pp, mem)
    )
    neuron = max(
        cost.neuron_time(n, threads, r, s, m)
        for n, r, s, m in zip(
            ts.neurons_pp, ts.remote_sent_pp, ts.messages_sent_pp, mem
        )
    )
    network = max(
        cost.network_time_mpi(
            ts.n_processes,
            loc,
            mr,
            sr,
            sr * 20.0,
            threads,
            m,
            overlap=overlap,
        )
        for loc, mr, sr, m in zip(
            ts.local_spikes_pp, ts.messages_recv_pp, ts.spikes_recv_pp, mem
        )
    )
    return PhaseTimes(synapse=float(synapse), neuron=float(neuron), network=float(network))


def phase_times_pgas(ts: TrafficSummary, mc: MachineConfig) -> PhaseTimes:
    """Per-tick Synapse/Neuron/Network times for the PGAS backend.

    The Neuron phase drops the per-message Isend overhead (puts are costed
    in the Network phase), keeping the comparison faithful to §VII.
    """
    cost = mc.machine.cost
    threads = mc.effective_threads
    mem = np.array(
        [cost.memory_factor(w * mc.procs_per_node) for w in ts.working_set_pp]
    )

    synapse = max(
        cost.synapse_time(a, threads, m)
        for a, m in zip(ts.active_axons_pp, mem)
    )
    neuron = max(
        cost.neuron_time(n, threads, r, 0.0, m)
        for n, r, m in zip(ts.neurons_pp, ts.remote_sent_pp, mem)
    )
    network = max(
        cost.network_time_pgas(
            ts.n_processes,
            loc,
            puts,
            sr,
            sent * 20.0,
            threads,
            m,
        )
        for loc, puts, sr, sent, m in zip(
            ts.local_spikes_pp,
            ts.messages_sent_pp,
            ts.spikes_recv_pp,
            ts.remote_sent_pp,
            mem,
        )
    )
    return PhaseTimes(synapse=float(synapse), neuron=float(neuron), network=float(network))


def run_times(per_tick: PhaseTimes, ticks: int) -> PhaseTimes:
    """Scale per-tick phase times to a whole run."""
    return PhaseTimes(
        synapse=per_tick.synapse * ticks,
        neuron=per_tick.neuron * ticks,
        network=per_tick.network * ticks,
    )
