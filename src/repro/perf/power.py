"""Power estimation — use-case (e) of §I.

TrueNorth's digital neurosynaptic core spends about 45 pJ per spike in
45 nm CMOS (Merolla et al., CICC 2011 — the paper's reference [3]); adding
a small per-core leakage/clock overhead yields a first-order architecture
power estimate.  Contrasting it against the Blue Gene/Q power needed to
*simulate* the same network is the paper's motivating argument: simulation
is for development, the architecture is for deployment.
"""

from __future__ import annotations

#: Energy per delivered spike event (45 pJ, [3]).
JOULES_PER_SPIKE = 45e-12
#: Static per-core power for clocks/leakage (order-of-magnitude CMOS figure).
WATTS_PER_CORE_STATIC = 50e-9
#: A Blue Gene/Q rack draws roughly 85 kW.
WATTS_PER_BGQ_RACK = 85e3


def truenorth_power_watts(
    n_cores: int,
    mean_rate_hz: float,
    neurons_per_core: int = 256,
    synapses_per_neuron: float = 256 * 0.125,
) -> float:
    """Estimated TrueNorth power for a running network.

    Event energy scales with the number of synaptic delivery events:
    ``neurons × rate × fan-in`` spikes-worth of crossbar activity.
    """
    if n_cores <= 0 or mean_rate_hz < 0:
        raise ValueError("need positive cores and non-negative rate")
    events_per_second = n_cores * neurons_per_core * mean_rate_hz * synapses_per_neuron
    return events_per_second * JOULES_PER_SPIKE + n_cores * WATTS_PER_CORE_STATIC


def blue_gene_power_watts(racks: float) -> float:
    """Power of the Blue Gene/Q system simulating the same network."""
    if racks <= 0:
        raise ValueError("racks must be positive")
    return racks * WATTS_PER_BGQ_RACK


def efficiency_ratio(n_cores: int, mean_rate_hz: float, racks: float) -> float:
    """How many times less power the architecture needs than its simulator."""
    return blue_gene_power_watts(racks) / truenorth_power_watts(n_cores, mean_rate_hz)
