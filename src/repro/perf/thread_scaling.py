"""OpenMP thread scaling reproduction — Fig 6 and the §VI-D trade-off.

Fig 6: a fixed 64M-core CoCoMac model on 65536 CPUs (4096 nodes, four
racks), one MPI process per node, sweeping the OpenMP team size; speed-up
is reported against the one-thread baseline (15 of 16 CPU cores idle).
Perfect scaling is prevented by the critical section in the Network phase
receive loop.

§VI-D also reports that trading MPI processes for OpenMP threads within a
node changes little: a smaller communicator shrinks the Reduce-Scatter,
but wider shared-memory regions pay more false sharing.
:func:`procs_threads_tradeoff` reproduces that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cocomac.model import build_macaque_coreobject
from repro.core.metrics import PhaseTimes
from repro.perf.costmodel import phase_times_mpi, run_times
from repro.perf.traffic import CocomacTraffic
from repro.runtime.machine import BLUE_GENE_Q, MachineConfig, MachineSpec

FIXED_CORES = 64 * 2**20  #: 64M TrueNorth cores
NODES = 4096  #: four racks
DEFAULT_THREADS = (1, 2, 4, 8, 16, 32)
TICKS = 500


@dataclass
class ThreadScalingPoint:
    threads: int
    procs_per_node: int
    times: PhaseTimes
    speedup_total: float = 1.0
    speedup_synapse: float = 1.0
    speedup_neuron: float = 1.0
    speedup_network: float = 1.0


def thread_scaling_series(
    total_cores: int = FIXED_CORES,
    nodes: int = NODES,
    threads: tuple[int, ...] = DEFAULT_THREADS,
    ticks: int = TICKS,
    machine: MachineSpec = BLUE_GENE_Q,
    seed: int = 0,
) -> list[ThreadScalingPoint]:
    """The Fig 6 sweep: one process per node, growing OpenMP teams."""
    model = build_macaque_coreobject(total_cores, seed=seed)
    traffic = CocomacTraffic(model)
    ts = traffic.summary(n_processes=nodes)
    points: list[ThreadScalingPoint] = []
    for t in threads:
        mc = MachineConfig(machine, nodes=nodes, procs_per_node=1, threads_per_proc=t)
        per_tick = phase_times_mpi(ts, mc)
        points.append(
            ThreadScalingPoint(
                threads=t, procs_per_node=1, times=run_times(per_tick, ticks)
            )
        )
    base = points[0].times
    for p in points:
        p.speedup_total = base.total / p.times.total
        p.speedup_synapse = base.synapse / p.times.synapse
        p.speedup_neuron = base.neuron / p.times.neuron
        p.speedup_network = base.network / p.times.network
    return points


def procs_threads_tradeoff(
    total_cores: int = FIXED_CORES,
    nodes: int = NODES,
    configs: tuple[tuple[int, int], ...] = ((1, 32), (2, 16), (4, 8), (8, 4), (16, 2)),
    ticks: int = TICKS,
    machine: MachineSpec = BLUE_GENE_Q,
    seed: int = 0,
) -> list[ThreadScalingPoint]:
    """§VI-D: (processes per node × threads per process) combinations.

    The paper observes near-identical totals for 1×32 and 16×2: the smaller
    Reduce-Scatter communicator of the wide-team configuration is offset by
    its false-sharing penalty.
    """
    model = build_macaque_coreobject(total_cores, seed=seed)
    traffic = CocomacTraffic(model)
    points: list[ThreadScalingPoint] = []
    for ppn, tpp in configs:
        ts = traffic.summary(n_processes=nodes * ppn)
        mc = MachineConfig(machine, nodes=nodes, procs_per_node=ppn, threads_per_proc=tpp)
        per_tick = phase_times_mpi(ts, mc)
        points.append(
            ThreadScalingPoint(
                threads=tpp, procs_per_node=ppn, times=run_times(per_tick, ticks)
            )
        )
    base = points[0].times
    for p in points:
        p.speedup_total = base.total / p.times.total
    return points
