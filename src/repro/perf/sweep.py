"""Machine-readable experiment exports.

Each paper figure's series can be exported as CSV for downstream plotting
(the repository itself stays plot-free: the benches print the numbers,
this module makes them consumable).  All exporters return the CSV text
and optionally write it to a file.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Callable, Sequence

from repro.perf.realtime import realtime_series
from repro.perf.strong_scaling import strong_scaling_series
from repro.perf.thread_scaling import procs_threads_tradeoff, thread_scaling_series
from repro.perf.weak_scaling import weak_scaling_series


def _csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    writer.writerows(rows)
    return buf.getvalue()


def weak_scaling_csv() -> str:
    """Fig 4(a) + 4(b) combined series."""
    rows = [
        (
            p.racks, p.nodes, p.cpus, p.cores,
            round(p.times.synapse, 3), round(p.times.neuron, 3),
            round(p.times.network, 3), round(p.times.total, 3),
            round(p.slowdown, 1), round(p.messages_per_tick, 1),
            round(p.spikes_per_tick, 1), round(p.bytes_per_tick, 1),
        )
        for p in weak_scaling_series()
    ]
    return _csv(
        [
            "racks", "nodes", "cpus", "cores", "synapse_s", "neuron_s",
            "network_s", "total_s", "slowdown_x", "messages_per_tick",
            "spikes_per_tick", "bytes_per_tick",
        ],
        rows,
    )


def strong_scaling_csv() -> str:
    """Fig 5 series."""
    rows = [
        (
            p.racks, p.nodes, p.cpus, round(p.cores_per_node, 1),
            round(p.times.synapse, 3), round(p.times.neuron, 3),
            round(p.times.network, 3), round(p.times.total, 3),
            round(p.speedup, 3),
        )
        for p in strong_scaling_series()
    ]
    return _csv(
        ["racks", "nodes", "cpus", "cores_per_node", "synapse_s", "neuron_s",
         "network_s", "total_s", "speedup_x"],
        rows,
    )


def thread_scaling_csv() -> str:
    """Fig 6 series plus the §VI-D trade-off rows."""
    rows = [
        ("fig6", 1, p.threads, round(p.times.total, 3),
         round(p.speedup_total, 3), round(p.speedup_synapse, 3),
         round(p.speedup_neuron, 3), round(p.speedup_network, 3))
        for p in thread_scaling_series()
    ]
    rows += [
        ("tradeoff", p.procs_per_node, p.threads, round(p.times.total, 3),
         round(p.speedup_total, 3), "", "", "")
        for p in procs_threads_tradeoff()
    ]
    return _csv(
        ["series", "procs_per_node", "threads", "total_s", "speedup_total",
         "speedup_synapse", "speedup_neuron", "speedup_network"],
        rows,
    )


def realtime_csv() -> str:
    """Fig 7 series."""
    rows = [
        (
            p.backend, p.racks, p.nodes, p.cpus,
            p.procs_per_node, p.threads_per_proc,
            round(p.seconds, 4), int(p.realtime),
        )
        for p in realtime_series()
    ]
    return _csv(
        ["backend", "racks", "nodes", "cpus", "procs_per_node",
         "threads_per_proc", "seconds_per_1000_ticks", "realtime"],
        rows,
    )


EXPORTERS: dict[str, Callable[[], str]] = {
    "fig4": weak_scaling_csv,
    "fig5": strong_scaling_csv,
    "fig6": thread_scaling_csv,
    "fig7": realtime_csv,
}


def export_all(directory: str | Path) -> list[Path]:
    """Write every figure's CSV into ``directory``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, exporter in EXPORTERS.items():
        path = directory / f"{name}.csv"
        path.write_text(exporter())
        written.append(path)
    return written
