"""Plain-text tables for benchmark output.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def paper_vs_model(paper: dict[str, float], model: dict[str, float]) -> str:
    """Two-column comparison used by the headline and calibration benches."""
    rows = []
    for key in paper:
        p, m = paper[key], model.get(key, float("nan"))
        ratio = m / p if p else float("nan")
        rows.append((key, p, m, ratio))
    return format_table(["quantity", "paper", "model", "model/paper"], rows)
