"""The headline scale claim (§I / §VI-B).

"Compass simulated an unprecedented 256M TrueNorth cores containing 65B
neurons and 16T synapses ... At an average neuron spiking rate of 8.1 Hz
the simulation is only 388× slower than real time."  (The synapse count is
the number of *physical* crossbar synapses — 256M × 256 × 256 ≈ 16.8T —
not the number of programmed connections.)
"""

from __future__ import annotations

from repro.arch.params import NUM_AXONS, NUM_NEURONS
from repro.perf.weak_scaling import weak_scaling_point
from repro.runtime.machine import BLUE_GENE_Q

#: The largest weak-scaling configuration in the paper.
HEADLINE_NODES = 16384
HEADLINE_CORES_PER_NODE = 16384

#: The paper's reported values, for side-by-side reporting.
PAPER = {
    "cores": 256e6,
    "neurons": 65e9,
    "synapses": 16e12,
    "mean_rate_hz": 8.1,
    "slowdown": 388.0,
    "spikes_per_tick": 22e6,
    "gb_per_tick": 0.44,
}


def headline_summary(seed: int = 0) -> dict[str, dict[str, float]]:
    """Model the paper's largest run; return paper-vs-model values."""
    point = weak_scaling_point(
        nodes=HEADLINE_NODES,
        cores_per_node=HEADLINE_CORES_PER_NODE,
        machine=BLUE_GENE_Q,
        seed=seed,
    )
    model = {
        "cores": float(point.cores),
        "neurons": float(point.neurons),
        "synapses": float(point.cores) * NUM_AXONS * NUM_NEURONS,
        "mean_rate_hz": point.mean_rate_hz,
        "slowdown": point.slowdown,
        "spikes_per_tick": point.spikes_per_tick,
        "gb_per_tick": point.bytes_per_tick / 1e9,
    }
    return {"paper": dict(PAPER), "model": model}
