"""Single-core convenience wrapper.

:class:`NeurosynapticCore` is the didactic, one-core face of the
architecture: useful for unit tests, application primitives, and the
quickstart example.  Internally it is a one-core :class:`CoreBlock`, so its
dynamics are bit-identical to the full simulator.
"""

from __future__ import annotations

import numpy as np

from repro.arch.coreblock import CoreBlock
from repro.arch.crossbar import Crossbar
from repro.arch.network import CoreNetwork
from repro.arch.params import (
    NUM_AXONS,
    NUM_NEURONS,
    NeuronParameters,
)


class NeurosynapticCore:
    """One standalone TrueNorth core with externally injected input.

    Spikes emitted by its neurons are returned to the caller rather than
    routed (a standalone core has no network); use the Compass simulator
    for multi-core models.
    """

    def __init__(
        self,
        seed: int = 0,
        num_axons: int = NUM_AXONS,
        num_neurons: int = NUM_NEURONS,
    ) -> None:
        self._network = CoreNetwork(
            1, seed=seed, num_axons=num_axons, num_neurons=num_neurons
        )
        self._block: CoreBlock | None = None
        self._tick = 0

    # -- configuration (must precede the first tick) ------------------------

    def _config(self) -> CoreNetwork:
        if self._block is not None:
            raise RuntimeError("core already running; configure before first tick")
        return self._network

    def set_crossbar(self, crossbar: Crossbar | np.ndarray) -> None:
        self._config().set_crossbar(0, crossbar)

    def set_axon_types(self, types: np.ndarray) -> None:
        self._config().set_axon_types(0, types)

    def set_neuron(self, neuron: int, params: NeuronParameters) -> None:
        self._config().set_neuron(0, neuron, params)

    def set_all_neurons(self, params: NeuronParameters) -> None:
        self._config().set_neurons(0, params)

    # -- running -------------------------------------------------------------

    def _ensure_block(self) -> CoreBlock:
        if self._block is None:
            self._block = CoreBlock(self._network, 0, 1)
        return self._block

    @property
    def tick_index(self) -> int:
        return self._tick

    @property
    def potentials(self) -> np.ndarray:
        """Current membrane potentials, shape (num_neurons,)."""
        return self._ensure_block().state.potential[0].copy()

    def inject(self, axon: int, delay: int = 1) -> None:
        """Schedule an external input spike on ``axon``."""
        block = self._ensure_block()
        block.buffers.schedule(
            np.array([0]), np.array([axon]), np.array([delay]), self._tick
        )

    def inject_many(self, axons: np.ndarray, delay: int = 1) -> None:
        axons = np.asarray(axons, dtype=np.int64)
        block = self._ensure_block()
        block.buffers.schedule(
            np.zeros_like(axons),
            axons,
            np.full_like(axons, delay),
            self._tick,
        )

    def step(self) -> np.ndarray:
        """Advance one tick; return the fired mask, shape (num_neurons,)."""
        block = self._ensure_block()
        counts = block.synapse_phase(self._tick)
        fired = block.neuron_phase(counts)
        self._tick += 1
        return fired[0]

    def run(self, ticks: int, inputs: dict[int, np.ndarray] | None = None) -> np.ndarray:
        """Run several ticks; ``inputs`` maps tick -> array of axons to spike.

        Returns the raster, shape ``(ticks, num_neurons)`` bool.
        """
        raster = np.zeros((ticks, self._network.num_neurons), dtype=bool)
        start = self._tick
        for t in range(ticks):
            if inputs and (start + t) in inputs:
                self.inject_many(inputs[start + t])
            raster[t] = self.step()
        return raster
