"""TrueNorth architecture model (§II of the paper).

A neurosynaptic core has 256 axons (inputs), a 256×256 binary synaptic
crossbar, and 256 digital integrate-leak-and-fire neurons.  A buffer in
front of every axon realises axonal delays.  Neurons target exactly one
axon anywhere in the system; only spikes ever leave a core.
"""

from repro.arch.params import (
    NUM_AXONS,
    NUM_NEURONS,
    NUM_AXON_TYPES,
    MAX_DELAY,
    ResetMode,
    NeuronParameters,
    CoreParameters,
    NeuronArrayParameters,
)
from repro.arch.neuron import ReferenceNeuron, NeuronArrayState, integrate_leak_fire
from repro.arch.crossbar import Crossbar
from repro.arch.axon import AxonBuffers
from repro.arch.core import NeurosynapticCore
from repro.arch.coreblock import CoreBlock
from repro.arch.network import CoreNetwork, NeuronTarget
from repro.arch.spike import SpikeBatch, SPIKE_WIRE_BYTES
from repro.arch.builder import NetworkBuilder, Population, InputPort

__all__ = [
    "NUM_AXONS",
    "NUM_NEURONS",
    "NUM_AXON_TYPES",
    "MAX_DELAY",
    "ResetMode",
    "NeuronParameters",
    "CoreParameters",
    "NeuronArrayParameters",
    "ReferenceNeuron",
    "NeuronArrayState",
    "integrate_leak_fire",
    "Crossbar",
    "AxonBuffers",
    "NeurosynapticCore",
    "CoreBlock",
    "CoreNetwork",
    "NeuronTarget",
    "SpikeBatch",
    "SPIKE_WIRE_BYTES",
    "NetworkBuilder",
    "Population",
    "InputPort",
]
