"""Digital integrate-leak-and-fire neuron dynamics.

Two bit-identical implementations:

* :class:`ReferenceNeuron` — a readable scalar model, the executable
  specification used in tests and documentation;
* :func:`integrate_leak_fire` — the vectorised production kernel operating
  on whole blocks of cores at once.

Draw-order contract (what makes the two implementations agree, and what
makes results independent of partitioning):

1. synaptic events within a tick are processed grouped by axon type in
   ascending type order; within a type, one Bernoulli draw per event;
2. after all synaptic events, a stochastic leak consumes exactly one draw;
3. after the leak, a non-zero ``threshold_mask`` consumes exactly one
   draw (the stochastic-threshold mode);
4. deterministic events, deterministic leaks, and a zero threshold mask
   consume no draws;
5. every neuron owns an independent PRNG stream (seed derived from the core
   seed and the neuron index), so draw consumption never couples neurons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.params import (
    NUM_AXON_TYPES,
    NeuronArrayParameters,
    NeuronParameters,
    ResetMode,
)
from repro.util.rng import Lcg32, LcgArray, derive_seed


def _sign(x: int) -> int:
    return (x > 0) - (x < 0)


class ReferenceNeuron:
    """Scalar executable specification of one TrueNorth neuron."""

    def __init__(self, params: NeuronParameters, seed: int) -> None:
        self.params = params
        self.rng = Lcg32(seed)
        self.potential = 0

    def tick(self, type_counts: tuple[int, int, int, int] | list[int]) -> bool:
        """Advance one tick given per-axon-type synaptic event counts.

        Returns True when the neuron fires.
        """
        p = self.params
        v = self.potential
        # 1. Integrate synaptic events, grouped by ascending axon type.
        for k in range(NUM_AXON_TYPES):
            w = p.weights[k]
            count = int(type_counts[k])
            if p.stochastic_weights[k]:
                mag = abs(w)
                s = _sign(w)
                for _ in range(count):
                    if self.rng.bernoulli(mag):
                        v += s
            else:
                v += w * count
        # 2. Leak (leak-reversal follows the potential's sign; sign(0)=+1).
        direction = 1 if (not p.leak_reversal or v >= 0) else -1
        if p.stochastic_leak:
            if self.rng.bernoulli(abs(p.leak)):
                v += _sign(p.leak) * direction
        else:
            v += p.leak * direction
        # 3. Threshold (possibly jittered), fire, reset.
        theta = p.threshold
        if p.threshold_mask:
            theta += self.rng.next_u8() & p.threshold_mask
        fired = v >= theta
        if fired:
            if p.reset_mode == ResetMode.ZERO:
                v = p.reset_value
            else:  # LINEAR: subtract the *effective* threshold
                v -= theta
        # 4. Floor saturation.
        if v < p.floor:
            v = p.floor
        self.potential = v
        return bool(fired)

    def run(self, schedule: list[tuple[int, int, int, int]]) -> list[bool]:
        """Run a sequence of ticks; convenience for tests."""
        return [self.tick(counts) for counts in schedule]


@dataclass
class NeuronArrayState:
    """Mutable per-neuron state for a block of cores: potential + PRNG."""

    potential: np.ndarray  # (C, N) int32
    rng: LcgArray  # (C, N) streams

    @classmethod
    def create(cls, core_seeds: np.ndarray, n_neurons: int) -> "NeuronArrayState":
        """Initialise state for ``len(core_seeds)`` cores.

        Neuron ``j`` of the core with seed ``s`` gets stream seed
        ``derive_seed(s, j)`` — identical to what :class:`ReferenceNeuron`
        users pass, so scalar and vectorised runs share randomness.
        """
        core_seeds = np.asarray(core_seeds)
        c = core_seeds.shape[0]
        seeds = np.empty((c, n_neurons), dtype=np.uint64)
        for ci, s in enumerate(core_seeds):
            seeds[ci] = np.fromiter(
                (derive_seed(int(s), j) for j in range(n_neurons)),
                dtype=np.uint64,
                count=n_neurons,
            )
        return cls(
            potential=np.zeros((c, n_neurons), dtype=np.int32),
            rng=LcgArray(seeds),
        )

    def clone(self) -> "NeuronArrayState":
        return NeuronArrayState(self.potential.copy(), self.rng.clone())


def integrate_leak_fire(
    state: NeuronArrayState,
    params: NeuronArrayParameters,
    type_counts: np.ndarray,
) -> np.ndarray:
    """Vectorised Neuron phase for a block of cores.

    Parameters
    ----------
    state:
        Mutable membrane potentials and PRNG streams, updated in place.
    params:
        Struct-of-arrays neuron configuration for the same block.
    type_counts:
        ``(C, N, NUM_AXON_TYPES) int`` — number of synaptic events per
        neuron per axon type delivered by the Synapse phase this tick.

    Returns
    -------
    ``(C, N) bool`` — which neurons fired this tick.
    """
    v = state.potential.astype(np.int64)  # headroom during accumulation
    counts = np.asarray(type_counts)
    if counts.shape != params.weights.shape:
        raise ValueError(
            f"type_counts shape {counts.shape} != weights shape {params.weights.shape}"
        )

    # 1. Integrate, ascending axon type; deterministic lanes in one shot,
    #    stochastic lanes via one Bernoulli round per remaining event.
    for k in range(NUM_AXON_TYPES):
        w_k = params.weights[:, :, k].astype(np.int64)
        c_k = counts[:, :, k].astype(np.int64)
        stoch = params.stochastic_weights[:, :, k]
        det = ~stoch
        if det.any():
            v += np.where(det, w_k * c_k, 0)
        if stoch.any():
            mag = np.abs(w_k).astype(np.uint32)
            sgn = np.sign(w_k)
            remaining = np.where(stoch, c_k, 0)
            max_rounds = int(remaining.max()) if remaining.size else 0
            for d in range(max_rounds):
                mask = remaining > d
                hits = state.rng.bernoulli(mag, mask)
                v += np.where(hits, sgn, 0)

    # 2. Leak: deterministic adds leak; stochastic adds sign(leak) on a hit
    #    and always consumes exactly one draw.  Leak-reversal multiplies the
    #    contribution by sign(V) (with sign(0) = +1), evaluated pre-leak.
    leak = params.leak.astype(np.int64)
    stoch_leak = params.stochastic_leak
    direction = np.where(params.leak_reversal & (v < 0), -1, 1).astype(np.int64)
    v += np.where(~stoch_leak, leak * direction, 0)
    if stoch_leak.any():
        hits = state.rng.bernoulli(np.abs(leak).astype(np.uint32), stoch_leak)
        v += np.where(hits, np.sign(leak) * direction, 0)

    # 3. Threshold (stochastic-threshold lanes consume one draw) / fire /
    #    reset.
    threshold = params.threshold.astype(np.int64)
    mask = params.threshold_mask.astype(np.int64)
    mask_on = mask > 0
    if mask_on.any():
        draws = state.rng.next_u8(mask_on).astype(np.int64)
        threshold = threshold + np.where(mask_on, draws & mask, 0)
    fired = v >= threshold
    reset_zero = fired & (params.reset_mode == int(ResetMode.ZERO))
    reset_linear = fired & (params.reset_mode == int(ResetMode.LINEAR))
    v = np.where(reset_zero, params.reset_value.astype(np.int64), v)
    v = np.where(reset_linear, v - threshold, v)

    # 4. Floor saturation.
    v = np.maximum(v, params.floor.astype(np.int64))

    state.potential[...] = v.astype(np.int32)
    return fired
