"""Configurable parameters of TrueNorth cores and neurons.

§II: "Neurons are digital integrate-leak-and-fire circuits, characterized by
configurable parameters sufficient to produce a rich repertoire of dynamic
and functional behavior".  The parameter set here is the minimal one the
paper describes: per-axon-type synaptic weights (possibly stochastic), a
(possibly stochastic) leak, a firing threshold, a reset behaviour, and a
membrane-potential floor.  Weight magnitudes used as stochastic thresholds
are 8-bit, matching the hardware-style PRNG comparison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import check_positive, check_range, require

#: Crossbar geometry of the simulated core instance (§II).
NUM_AXONS = 256
NUM_NEURONS = 256
#: Axons are tagged with one of four types; each neuron holds one weight per type.
NUM_AXON_TYPES = 4
#: Axonal delays are 1..15 ticks; the delay buffer therefore has 16 slots.
MAX_DELAY = 15
DELAY_SLOTS = MAX_DELAY + 1

#: Default membrane floor: potentials saturate rather than diverging downward.
DEFAULT_FLOOR = -(2**17)


class ResetMode(enum.IntEnum):
    """What happens to the membrane potential when a neuron fires.

    ZERO   — set the potential to ``reset_value`` (hardware default 0);
    LINEAR — subtract the threshold, preserving super-threshold residue.
    """

    ZERO = 0
    LINEAR = 1


@dataclass(frozen=True)
class NeuronParameters:
    """Full configuration of one digital integrate-leak-and-fire neuron.

    Attributes
    ----------
    weights:
        Synaptic weight per axon type, ``NUM_AXON_TYPES`` signed integers.
        A spike on an axon of type ``k`` that is connected through the
        crossbar contributes ``weights[k]`` (deterministic mode) or
        ``sign(weights[k])`` with probability ``|weights[k]|/256``
        (stochastic mode).
    stochastic_weights:
        Per-type flags selecting the stochastic synapse mode.
    leak:
        Signed leak applied once per tick after integration; stochastic
        mode applies ``sign(leak)`` with probability ``|leak|/256``.
    stochastic_leak:
        Flag selecting the stochastic leak mode.
    threshold:
        Positive firing threshold; the neuron fires when ``V >= threshold``.
    reset_mode / reset_value:
        Post-fire behaviour, see :class:`ResetMode`.
    floor:
        Lower saturation bound for the membrane potential.
    threshold_mask:
        Stochastic-threshold mode (an "extension" behaviour of the
        hardware's rich repertoire, §II): when non-zero, the effective
        firing threshold each tick is ``threshold + (draw & mask)`` with
        one 8-bit PRNG draw consumed per tick.  Zero disables the mode
        and consumes nothing.
    leak_reversal:
        When set, the leak's sign follows the membrane potential's sign
        (``sign(V) * leak``), so a positive leak drives the potential
        away from zero and a negative leak decays it toward zero from
        both sides.  ``sign(0)`` is taken as ``+1``.
    """

    weights: tuple[int, int, int, int] = (1, 1, 1, 1)
    stochastic_weights: tuple[bool, bool, bool, bool] = (False, False, False, False)
    leak: int = 0
    stochastic_leak: bool = False
    threshold: int = 1
    reset_mode: ResetMode = ResetMode.ZERO
    reset_value: int = 0
    floor: int = DEFAULT_FLOOR
    threshold_mask: int = 0
    leak_reversal: bool = False

    def __post_init__(self) -> None:
        require(len(self.weights) == NUM_AXON_TYPES, "weights must have 4 entries")
        require(
            len(self.stochastic_weights) == NUM_AXON_TYPES,
            "stochastic_weights must have 4 entries",
        )
        for w, s in zip(self.weights, self.stochastic_weights):
            check_range("weight", int(w), -255, 255)
            require(isinstance(s, (bool, np.bool_)), "stochastic flags must be bool")
        check_range("leak", int(self.leak), -255, 255)
        check_positive("threshold", int(self.threshold))
        check_range("reset_value", int(self.reset_value), self.floor, None)
        require(self.floor <= 0, "floor must be non-positive")
        check_range("threshold_mask", int(self.threshold_mask), 0, 255)
        require(
            isinstance(self.leak_reversal, (bool, np.bool_)),
            "leak_reversal must be bool",
        )


@dataclass(frozen=True)
class CoreParameters:
    """Per-core configuration that is not per-neuron.

    ``seed`` feeds the core's deterministic PRNG tree (§II: configurable
    seeds guarantee one-to-one software/hardware equivalence).
    """

    seed: int = 0
    num_axons: int = NUM_AXONS
    num_neurons: int = NUM_NEURONS

    def __post_init__(self) -> None:
        check_positive("num_axons", self.num_axons)
        check_positive("num_neurons", self.num_neurons)


@dataclass
class NeuronArrayParameters:
    """Struct-of-arrays neuron parameters for a block of cores.

    Shapes are ``(cores, neurons, ...)``; this is the layout the vectorised
    kernel consumes.  All arrays are owned (not views of caller data).
    """

    weights: np.ndarray  # (C, N, 4) int32
    stochastic_weights: np.ndarray  # (C, N, 4) bool
    leak: np.ndarray  # (C, N) int32
    stochastic_leak: np.ndarray  # (C, N) bool
    threshold: np.ndarray  # (C, N) int32
    reset_mode: np.ndarray  # (C, N) uint8
    reset_value: np.ndarray  # (C, N) int32
    floor: np.ndarray  # (C, N) int32
    threshold_mask: np.ndarray = None  # (C, N) int32
    leak_reversal: np.ndarray = None  # (C, N) bool

    def __post_init__(self) -> None:
        c, n = self.leak.shape
        if self.threshold_mask is None:
            self.threshold_mask = np.zeros((c, n), dtype=np.int32)
        if self.leak_reversal is None:
            self.leak_reversal = np.zeros((c, n), dtype=bool)

    @property
    def shape(self) -> tuple[int, int]:
        return self.leak.shape  # (C, N)

    @classmethod
    def empty(cls, n_cores: int, n_neurons: int = NUM_NEURONS) -> "NeuronArrayParameters":
        """Default-initialised block (unit weights, threshold 1, no leak)."""
        c, n = n_cores, n_neurons
        return cls(
            weights=np.ones((c, n, NUM_AXON_TYPES), dtype=np.int32),
            stochastic_weights=np.zeros((c, n, NUM_AXON_TYPES), dtype=bool),
            leak=np.zeros((c, n), dtype=np.int32),
            stochastic_leak=np.zeros((c, n), dtype=bool),
            threshold=np.ones((c, n), dtype=np.int32),
            reset_mode=np.zeros((c, n), dtype=np.uint8),
            reset_value=np.zeros((c, n), dtype=np.int32),
            floor=np.full((c, n), DEFAULT_FLOOR, dtype=np.int32),
            threshold_mask=np.zeros((c, n), dtype=np.int32),
            leak_reversal=np.zeros((c, n), dtype=bool),
        )

    @classmethod
    def homogeneous(
        cls, params: NeuronParameters, n_cores: int, n_neurons: int = NUM_NEURONS
    ) -> "NeuronArrayParameters":
        """Broadcast a single :class:`NeuronParameters` over a whole block."""
        block = cls.empty(n_cores, n_neurons)
        block.set_neuron(slice(None), slice(None), params)
        return block

    def set_neuron(self, core_idx, neuron_idx, params: NeuronParameters) -> None:
        """Assign ``params`` to the selected (core, neuron) positions."""
        self.weights[core_idx, neuron_idx] = np.asarray(params.weights, dtype=np.int32)
        self.stochastic_weights[core_idx, neuron_idx] = np.asarray(
            params.stochastic_weights, dtype=bool
        )
        self.leak[core_idx, neuron_idx] = params.leak
        self.stochastic_leak[core_idx, neuron_idx] = params.stochastic_leak
        self.threshold[core_idx, neuron_idx] = params.threshold
        self.reset_mode[core_idx, neuron_idx] = int(params.reset_mode)
        self.reset_value[core_idx, neuron_idx] = params.reset_value
        self.floor[core_idx, neuron_idx] = params.floor
        self.threshold_mask[core_idx, neuron_idx] = params.threshold_mask
        self.leak_reversal[core_idx, neuron_idx] = params.leak_reversal

    def get_neuron(self, core_idx: int, neuron_idx: int) -> NeuronParameters:
        """Read back one neuron's configuration as a value object."""
        return NeuronParameters(
            weights=tuple(int(w) for w in self.weights[core_idx, neuron_idx]),
            stochastic_weights=tuple(
                bool(s) for s in self.stochastic_weights[core_idx, neuron_idx]
            ),
            leak=int(self.leak[core_idx, neuron_idx]),
            stochastic_leak=bool(self.stochastic_leak[core_idx, neuron_idx]),
            threshold=int(self.threshold[core_idx, neuron_idx]),
            reset_mode=ResetMode(int(self.reset_mode[core_idx, neuron_idx])),
            reset_value=int(self.reset_value[core_idx, neuron_idx]),
            floor=int(self.floor[core_idx, neuron_idx]),
            threshold_mask=int(self.threshold_mask[core_idx, neuron_idx]),
            leak_reversal=bool(self.leak_reversal[core_idx, neuron_idx]),
        )

    def slice_cores(self, sel) -> "NeuronArrayParameters":
        """Copy out a sub-block of cores (used by the partitioner)."""
        return NeuronArrayParameters(
            weights=self.weights[sel].copy(),
            stochastic_weights=self.stochastic_weights[sel].copy(),
            leak=self.leak[sel].copy(),
            stochastic_leak=self.stochastic_leak[sel].copy(),
            threshold=self.threshold[sel].copy(),
            reset_mode=self.reset_mode[sel].copy(),
            reset_value=self.reset_value[sel].copy(),
            floor=self.floor[sel].copy(),
            threshold_mask=self.threshold_mask[sel].copy(),
            leak_reversal=self.leak_reversal[sel].copy(),
        )
