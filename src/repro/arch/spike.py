"""Spike message wire format.

The paper's bandwidth estimate (§VI-B) assumes 20 bytes per spike; we use
the same record size: target gid (int64), target axon (int32), delay
(int32), and the emitting tick (int32).  Batches are struct-of-arrays and
encode to a contiguous byte string, which is what the simulated MPI layer
"transmits" and what the byte-volume metrics count.
"""

from __future__ import annotations

import numpy as np

#: The numpy record dtype of one spike on the wire.
SPIKE_DTYPE = np.dtype(
    [
        ("tgt_gid", "<i8"),
        ("tgt_axon", "<i4"),
        ("delay", "<i4"),
        ("tick", "<i4"),
    ]
)

SPIKE_WIRE_BYTES = SPIKE_DTYPE.itemsize
assert SPIKE_WIRE_BYTES == 20, "wire format must match the paper's 20 B/spike"


class SpikeBatch:
    """A batch of spikes addressed to one destination process."""

    __slots__ = ("tgt_gid", "tgt_axon", "delay", "tick")

    def __init__(
        self,
        tgt_gid: np.ndarray,
        tgt_axon: np.ndarray,
        delay: np.ndarray,
        tick: np.ndarray | int,
    ) -> None:
        self.tgt_gid = np.asarray(tgt_gid, dtype=np.int64)
        self.tgt_axon = np.asarray(tgt_axon, dtype=np.int32)
        self.delay = np.asarray(delay, dtype=np.int32)
        self.tick = np.broadcast_to(
            np.asarray(tick, dtype=np.int32), self.tgt_gid.shape
        ).copy()
        if not (
            self.tgt_gid.shape == self.tgt_axon.shape == self.delay.shape
        ):
            raise ValueError("spike batch arrays must have identical shapes")

    @classmethod
    def empty(cls) -> "SpikeBatch":
        z = np.zeros(0, dtype=np.int64)
        return cls(z, z, z, z)

    @property
    def count(self) -> int:
        return int(self.tgt_gid.shape[0])

    @property
    def nbytes(self) -> int:
        return self.count * SPIKE_WIRE_BYTES

    def encode(self) -> bytes:
        """Serialise to the 20-byte-per-spike wire format."""
        rec = np.empty(self.count, dtype=SPIKE_DTYPE)
        rec["tgt_gid"] = self.tgt_gid
        rec["tgt_axon"] = self.tgt_axon
        rec["delay"] = self.delay
        rec["tick"] = self.tick
        return rec.tobytes()

    @classmethod
    def decode(cls, payload: bytes) -> "SpikeBatch":
        rec = np.frombuffer(payload, dtype=SPIKE_DTYPE)
        return cls(
            rec["tgt_gid"].copy(),
            rec["tgt_axon"].copy(),
            rec["delay"].copy(),
            rec["tick"].copy(),
        )

    @classmethod
    def concatenate(cls, batches: list["SpikeBatch"]) -> "SpikeBatch":
        batches = [b for b in batches if b.count]
        if not batches:
            return cls.empty()
        return cls(
            np.concatenate([b.tgt_gid for b in batches]),
            np.concatenate([b.tgt_axon for b in batches]),
            np.concatenate([b.delay for b in batches]),
            np.concatenate([b.tick for b in batches]),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpikeBatch):
            return NotImplemented
        return (
            np.array_equal(self.tgt_gid, other.tgt_gid)
            and np.array_equal(self.tgt_axon, other.tgt_axon)
            and np.array_equal(self.delay, other.delay)
            and np.array_equal(self.tick, other.tick)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SpikeBatch(count={self.count})"
