"""Axon delay buffers (§II, Fig 1: "A buffer for incoming spikes precedes
each axon to account for axonal delays").

A spike delivered during the Network phase of tick *t* with delay *d*
(1 ≤ d ≤ MAX_DELAY) becomes visible to the Synapse phase of tick *t + d*.
The buffer is a circular array of ``DELAY_SLOTS`` single-bit planes; slot
``t mod DELAY_SLOTS`` holds the spikes due at tick *t*.  Because a slot is
read and cleared before any spike with delay ≥ 1 can land in it, the
circular reuse is race-free.
"""

from __future__ import annotations

import numpy as np

from repro.arch.params import DELAY_SLOTS, MAX_DELAY


class AxonBuffers:
    """Circular delay buffers for a block of cores.

    ``pending`` has shape ``(cores, DELAY_SLOTS, axons)`` dtype bool.
    """

    __slots__ = ("pending",)

    def __init__(self, n_cores: int, n_axons: int) -> None:
        self.pending = np.zeros((n_cores, DELAY_SLOTS, n_axons), dtype=bool)

    @property
    def n_cores(self) -> int:
        return self.pending.shape[0]

    @property
    def n_axons(self) -> int:
        return self.pending.shape[2]

    def schedule(
        self,
        core_idx: np.ndarray,
        axon_idx: np.ndarray,
        delay: np.ndarray,
        current_tick: int,
    ) -> None:
        """Schedule spikes: arrays of (local core, axon, delay) triples.

        Duplicate deliveries to the same (core, axon, tick) merge into one
        spike, exactly as a 1-bit hardware buffer entry would.
        """
        core_idx = np.asarray(core_idx, dtype=np.int64)
        axon_idx = np.asarray(axon_idx, dtype=np.int64)
        delay = np.asarray(delay, dtype=np.int64)
        if core_idx.size == 0:
            return
        if delay.min() < 1 or delay.max() > MAX_DELAY:
            raise ValueError(
                f"delays must be within [1, {MAX_DELAY}], got "
                f"[{delay.min()}, {delay.max()}]"
            )
        slots = (current_tick + delay) % DELAY_SLOTS
        self.pending[core_idx, slots, axon_idx] = True

    def collect(self, current_tick: int) -> np.ndarray:
        """Return and clear the ``(cores, axons)`` plane due this tick."""
        slot = current_tick % DELAY_SLOTS
        active = self.pending[:, slot, :].copy()
        self.pending[:, slot, :] = False
        return active

    def peek(self, tick: int) -> np.ndarray:
        """Non-destructive view of the plane due at ``tick`` (for tests)."""
        return self.pending[:, tick % DELAY_SLOTS, :].copy()

    def occupancy(self) -> int:
        """Total scheduled spikes across all slots."""
        return int(self.pending.sum())

    def clone(self) -> "AxonBuffers":
        c = AxonBuffers(self.n_cores, self.n_axons)
        c.pending[...] = self.pending
        return c
