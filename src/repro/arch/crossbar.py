"""The 256×256 binary synaptic crossbar (§II, Fig 1).

Synapses are single bits (axon *i* → neuron *j*), stored packed 8-per-byte:
the 32× storage saving over C2 that the paper calls out in §I.  A
:class:`Crossbar` is the single-core view; blocks of cores store the same
packed layout stacked along a leading axis (see
:class:`repro.arch.coreblock.CoreBlock`).
"""

from __future__ import annotations

import numpy as np

from repro.arch.params import NUM_AXONS, NUM_NEURONS
from repro.util.bitops import get_bit, pack_bits, popcount_rows, set_bit, unpack_bits


class Crossbar:
    """Packed binary synaptic matrix for one core.

    ``packed`` has shape ``(num_axons, num_neurons // 8)`` dtype uint8;
    row *i* holds the outgoing connections of axon *i*.
    """

    __slots__ = ("packed", "num_axons", "num_neurons")

    def __init__(self, packed: np.ndarray, num_neurons: int = NUM_NEURONS) -> None:
        packed = np.ascontiguousarray(packed, dtype=np.uint8)
        if packed.ndim != 2 or packed.shape[1] * 8 < num_neurons:
            raise ValueError(f"bad packed crossbar shape {packed.shape}")
        self.packed = packed
        self.num_axons = packed.shape[0]
        self.num_neurons = num_neurons

    # -- constructors ------------------------------------------------------

    @classmethod
    def zeros(cls, num_axons: int = NUM_AXONS, num_neurons: int = NUM_NEURONS) -> "Crossbar":
        return cls(np.zeros((num_axons, (num_neurons + 7) // 8), dtype=np.uint8), num_neurons)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "Crossbar":
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("dense crossbar must be 2-D")
        return cls(pack_bits(dense), dense.shape[1])

    @classmethod
    def identity(cls, n: int = NUM_AXONS) -> "Crossbar":
        """Axon *i* connects exactly to neuron *i* — the relay pattern."""
        return cls.from_dense(np.eye(n, dtype=bool))

    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        density: float,
        num_axons: int = NUM_AXONS,
        num_neurons: int = NUM_NEURONS,
    ) -> "Crossbar":
        """Bernoulli(density) crossbar, the workload generator's default."""
        if not 0.0 <= density <= 1.0:
            raise ValueError("density must be within [0, 1]")
        dense = rng.random((num_axons, num_neurons)) < density
        return cls.from_dense(dense)

    # -- element access ----------------------------------------------------

    def row(self, axon: int) -> np.ndarray:
        """Dense boolean row: which neurons axon ``axon`` drives."""
        return unpack_bits(self.packed[axon], self.num_neurons)

    def get(self, axon: int, neuron: int) -> bool:
        return bool(get_bit(self.packed[axon], neuron))

    def set(self, axon: int, neuron: int, value: bool = True) -> None:
        set_bit(self.packed[axon], neuron, value)

    def to_dense(self) -> np.ndarray:
        return unpack_bits(self.packed, self.num_neurons)

    # -- statistics --------------------------------------------------------

    @property
    def synapse_count(self) -> int:
        """Number of set synapses."""
        return int(popcount_rows(self.packed).sum())

    @property
    def density(self) -> float:
        return self.synapse_count / (self.num_axons * self.num_neurons)

    @property
    def nbytes(self) -> int:
        return self.packed.nbytes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Crossbar):
            return NotImplemented
        return (
            self.num_neurons == other.num_neurons
            and np.array_equal(self.packed, other.packed)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Crossbar({self.num_axons}x{self.num_neurons}, "
            f"density={self.density:.3f})"
        )
