"""Whole-system network description: every core's configuration plus the
global neuron→axon connectivity.

"A neuron on any TrueNorth core can connect to an axon on any TrueNorth
core in the network" (§II).  :class:`CoreNetwork` is the explicit, fully
instantiated model — the thing the Parallel Compass Compiler produces in
situ and the Compass simulator partitions across processes.  Cores are
addressed by a dense global core id (gid); the partitioner maps gid ranges
to processes with the paper's implicit contiguous map (§III).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.crossbar import Crossbar
from repro.arch.params import (
    MAX_DELAY,
    NUM_AXON_TYPES,
    NUM_AXONS,
    NUM_NEURONS,
    NeuronArrayParameters,
    NeuronParameters,
)
from repro.errors import WiringError
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class NeuronTarget:
    """Where one neuron sends its spikes: a core, an axon, and a delay."""

    gid: int
    axon: int
    delay: int = 1


class CoreNetwork:
    """Explicit model of ``n_cores`` TrueNorth cores and their wiring.

    Storage is struct-of-arrays throughout so a partition can be carved out
    as contiguous slices.  Target gid ``-1`` marks an unconnected neuron.
    """

    def __init__(
        self,
        n_cores: int,
        seed: int = 0,
        num_axons: int = NUM_AXONS,
        num_neurons: int = NUM_NEURONS,
    ) -> None:
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        self.n_cores = int(n_cores)
        self.seed = int(seed)
        self.num_axons = int(num_axons)
        self.num_neurons = int(num_neurons)

        c, a, n = self.n_cores, self.num_axons, self.num_neurons
        self.crossbars = np.zeros((c, a, (n + 7) // 8), dtype=np.uint8)
        self.axon_types = np.zeros((c, a), dtype=np.uint8)
        self.neuron_params = NeuronArrayParameters.empty(c, n)
        self.target_gid = np.full((c, n), -1, dtype=np.int64)
        self.target_axon = np.zeros((c, n), dtype=np.int32)
        self.target_delay = np.ones((c, n), dtype=np.int32)
        self.core_seeds = np.fromiter(
            (derive_seed(self.seed, gid) for gid in range(c)), dtype=np.uint64, count=c
        )

    # -- configuration -----------------------------------------------------

    def set_crossbar(self, gid: int, crossbar: Crossbar | np.ndarray) -> None:
        """Install a crossbar (packed :class:`Crossbar` or dense 0/1 array)."""
        if isinstance(crossbar, np.ndarray):
            crossbar = Crossbar.from_dense(crossbar)
        if crossbar.num_axons != self.num_axons or crossbar.num_neurons != self.num_neurons:
            raise WiringError(
                f"crossbar {crossbar.num_axons}x{crossbar.num_neurons} does not fit "
                f"core geometry {self.num_axons}x{self.num_neurons}"
            )
        self.crossbars[gid] = crossbar.packed

    def get_crossbar(self, gid: int) -> Crossbar:
        return Crossbar(self.crossbars[gid].copy(), self.num_neurons)

    def set_axon_types(self, gid: int, types: np.ndarray) -> None:
        types = np.asarray(types, dtype=np.uint8)
        if types.shape != (self.num_axons,):
            raise WiringError(f"axon types must have shape ({self.num_axons},)")
        if types.max(initial=0) >= NUM_AXON_TYPES:
            raise WiringError(f"axon types must be < {NUM_AXON_TYPES}")
        self.axon_types[gid] = types

    def set_neuron(self, gid: int, neuron: int, params: NeuronParameters) -> None:
        self.neuron_params.set_neuron(gid, neuron, params)

    def set_neurons(self, gid: int, params: NeuronParameters) -> None:
        """Configure every neuron on a core identically."""
        self.neuron_params.set_neuron(gid, slice(None), params)

    def connect(
        self, src_gid: int, src_neuron: int, target: NeuronTarget
    ) -> None:
        """Point one neuron's output at a (core, axon, delay) destination."""
        self._check_target(target.gid, target.axon, target.delay)
        self.target_gid[src_gid, src_neuron] = target.gid
        self.target_axon[src_gid, src_neuron] = target.axon
        self.target_delay[src_gid, src_neuron] = target.delay

    def connect_many(
        self,
        src_gid: np.ndarray,
        src_neuron: np.ndarray,
        tgt_gid: np.ndarray,
        tgt_axon: np.ndarray,
        delay: np.ndarray | int = 1,
    ) -> None:
        """Bulk variant of :meth:`connect` (the compiler's path)."""
        tgt_gid = np.asarray(tgt_gid, dtype=np.int64)
        tgt_axon = np.asarray(tgt_axon, dtype=np.int32)
        delay = np.broadcast_to(np.asarray(delay, dtype=np.int32), tgt_gid.shape)
        if tgt_gid.size:
            if tgt_gid.min() < 0 or tgt_gid.max() >= self.n_cores:
                raise WiringError("target gid out of range")
            if tgt_axon.min() < 0 or tgt_axon.max() >= self.num_axons:
                raise WiringError("target axon out of range")
            if delay.min() < 1 or delay.max() > MAX_DELAY:
                raise WiringError("target delay out of range")
        self.target_gid[src_gid, src_neuron] = tgt_gid
        self.target_axon[src_gid, src_neuron] = tgt_axon
        self.target_delay[src_gid, src_neuron] = delay

    def get_target(self, gid: int, neuron: int) -> NeuronTarget | None:
        tg = int(self.target_gid[gid, neuron])
        if tg < 0:
            return None
        return NeuronTarget(
            tg, int(self.target_axon[gid, neuron]), int(self.target_delay[gid, neuron])
        )

    def _check_target(self, gid: int, axon: int, delay: int) -> None:
        if not 0 <= gid < self.n_cores:
            raise WiringError(f"target gid {gid} out of range [0, {self.n_cores})")
        if not 0 <= axon < self.num_axons:
            raise WiringError(f"target axon {axon} out of range [0, {self.num_axons})")
        if not 1 <= delay <= MAX_DELAY:
            raise WiringError(f"delay {delay} out of range [1, {MAX_DELAY}]")

    # -- inspection --------------------------------------------------------

    @property
    def n_neurons(self) -> int:
        return self.n_cores * self.num_neurons

    @property
    def synapse_count(self) -> int:
        """Total set crossbar bits across the network."""
        from repro.util.bitops import popcount_rows

        return int(popcount_rows(self.crossbars.reshape(-1, self.crossbars.shape[-1])).sum())

    @property
    def connected_neuron_count(self) -> int:
        return int((self.target_gid >= 0).sum())

    def model_nbytes(self) -> int:
        """Approximate in-memory model size (the §IV multi-TB argument)."""
        params = self.neuron_params
        return (
            self.crossbars.nbytes
            + self.axon_types.nbytes
            + self.target_gid.nbytes
            + self.target_axon.nbytes
            + self.target_delay.nbytes
            + params.weights.nbytes
            + params.stochastic_weights.nbytes
            + params.leak.nbytes
            + params.stochastic_leak.nbytes
            + params.threshold.nbytes
            + params.reset_mode.nbytes
            + params.reset_value.nbytes
            + params.floor.nbytes
        )

    def validate(self) -> None:
        """Raise :class:`WiringError` on any dangling connection."""
        connected = self.target_gid >= 0
        tg = self.target_gid[connected]
        ta = self.target_axon[connected]
        td = self.target_delay[connected]
        if tg.size == 0:
            return
        if tg.max() >= self.n_cores:
            raise WiringError("target gid beyond network size")
        if ta.min() < 0 or ta.max() >= self.num_axons:
            raise WiringError("target axon out of range")
        if td.min() < 1 or td.max() > MAX_DELAY:
            raise WiringError("target delay out of range")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CoreNetwork(cores={self.n_cores}, neurons={self.n_neurons}, "
            f"synapses={self.synapse_count})"
        )
