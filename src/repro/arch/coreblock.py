"""A block of TrueNorth cores owned by one simulated process.

§I: "the fundamental data structure is a neurosynaptic core" — a
:class:`CoreBlock` is the vectorised realisation: every per-core array of
the block is stacked along a leading core axis so the Synapse and Neuron
phases run as a handful of NumPy kernels regardless of how many cores the
process hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.axon import AxonBuffers
from repro.arch.neuron import NeuronArrayState, integrate_leak_fire
from repro.arch.network import CoreNetwork
from repro.arch.params import NUM_AXON_TYPES
from repro.util.bitops import unpack_bits


@dataclass
class OutgoingSpikes:
    """Spikes produced by one Neuron phase, in struct-of-arrays form.

    ``src_gid`` is retained for tracing/regression; the Network phase only
    needs the target triple.
    """

    src_gid: np.ndarray  # (M,) int64
    tgt_gid: np.ndarray  # (M,) int64
    tgt_axon: np.ndarray  # (M,) int32
    delay: np.ndarray  # (M,) int32

    @property
    def count(self) -> int:
        return int(self.tgt_gid.shape[0])


class CoreBlock:
    """Simulation state for a contiguous range of cores.

    Construction copies the relevant slices out of a :class:`CoreNetwork`,
    mirroring Compass instantiating cores per process after compilation
    (§IV: compiler structures are deallocated once cores are instantiated).
    """

    def __init__(self, network: CoreNetwork, gid_lo: int, gid_hi: int) -> None:
        if not 0 <= gid_lo < gid_hi <= network.n_cores:
            raise ValueError(f"bad gid range [{gid_lo}, {gid_hi})")
        sel = slice(gid_lo, gid_hi)
        self.gid_lo = gid_lo
        self.gid_hi = gid_hi
        self.num_axons = network.num_axons
        self.num_neurons = network.num_neurons

        self.crossbars = network.crossbars[sel].copy()
        self.axon_types = network.axon_types[sel].copy()
        self.params = network.neuron_params.slice_cores(sel)
        self.target_gid = network.target_gid[sel].copy()
        self.target_axon = network.target_axon[sel].copy()
        self.target_delay = network.target_delay[sel].copy()

        self.state = NeuronArrayState.create(
            network.core_seeds[sel], network.num_neurons
        )
        self.buffers = AxonBuffers(self.n_cores, network.num_axons)
        self._gids = np.arange(gid_lo, gid_hi, dtype=np.int64)
        self._neuron_idx = np.arange(self.num_neurons, dtype=np.int64)

    @property
    def n_cores(self) -> int:
        return self.gid_hi - self.gid_lo

    @property
    def gids(self) -> np.ndarray:
        return self._gids

    def owns(self, gid: np.ndarray | int) -> np.ndarray | bool:
        return (np.asarray(gid) >= self.gid_lo) & (np.asarray(gid) < self.gid_hi)

    # -- the three phases of Listing 1 --------------------------------------

    def synapse_phase(self, tick: int) -> np.ndarray:
        """Propagate due spikes through the crossbars.

        Returns ``(cores, neurons, NUM_AXON_TYPES)`` synaptic event counts
        for the Neuron phase.  Also returns the number of active axons via
        the ``last_active_axons`` attribute for metrics.
        """
        active = self.buffers.collect(tick)  # (C, A) bool
        counts = np.zeros(
            (self.n_cores, self.num_neurons, NUM_AXON_TYPES), dtype=np.int32
        )
        cs, axs = np.nonzero(active)
        self.last_active_axons = int(cs.size)
        if cs.size:
            rows = unpack_bits(self.crossbars[cs, axs], self.num_neurons)
            ks = self.axon_types[cs, axs].astype(np.int64)
            np.add.at(
                counts,
                (cs[:, None], self._neuron_idx[None, :], ks[:, None]),
                rows.astype(np.int32),
            )
        return counts

    def neuron_phase(self, type_counts: np.ndarray) -> np.ndarray:
        """Integrate-leak-fire for every neuron; returns fired mask."""
        return integrate_leak_fire(self.state, self.params, type_counts)

    def outgoing(self, fired: np.ndarray) -> OutgoingSpikes:
        """Convert a fired mask into routed spikes (unconnected drop)."""
        cs, ns = np.nonzero(fired & (self.target_gid >= 0))
        return OutgoingSpikes(
            src_gid=self._gids[cs],
            tgt_gid=self.target_gid[cs, ns],
            tgt_axon=self.target_axon[cs, ns].astype(np.int32),
            delay=self.target_delay[cs, ns].astype(np.int32),
        )

    def deliver(
        self,
        tgt_gid: np.ndarray,
        tgt_axon: np.ndarray,
        delay: np.ndarray,
        tick: int,
    ) -> None:
        """Schedule spikes addressed to cores this block owns."""
        tgt_gid = np.asarray(tgt_gid, dtype=np.int64)
        if tgt_gid.size == 0:
            return
        if not np.all(self.owns(tgt_gid)):
            raise ValueError("deliver() received spikes for cores outside the block")
        self.buffers.schedule(tgt_gid - self.gid_lo, tgt_axon, delay, tick)

    # -- regression support --------------------------------------------------

    def snapshot(self) -> dict[str, np.ndarray]:
        """State vector for checkpoint/equality checks."""
        return {
            "potential": self.state.potential.copy(),
            "rng": self.state.rng.state.copy(),
            "pending": self.buffers.pending.copy(),
        }

    def restore(self, snap: dict[str, np.ndarray]) -> None:
        self.state.potential[...] = snap["potential"]
        self.state.rng.state[...] = snap["rng"]
        self.buffers.pending[...] = snap["pending"]
