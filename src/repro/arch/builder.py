"""Population-level network construction.

§IV sketches the programming model: "first implementing libraries of
functional primitives that run on one or more interconnected TrueNorth
cores.  We can then build richer applications by instantiating and
connecting regions of functional primitives."  :class:`NetworkBuilder` is
that API surface for hand-built applications: declare populations of
cores, connect them (round-robin/diffuse, like the PCC), reserve axons
for external input, and build the explicit :class:`CoreNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.crossbar import Crossbar
from repro.arch.network import CoreNetwork
from repro.arch.params import (
    MAX_DELAY,
    NUM_AXON_TYPES,
    NUM_AXONS,
    NUM_NEURONS,
    NeuronParameters,
)
from repro.compiler.allocator import AxonAllocator, NeuronAllocator
from repro.errors import WiringError
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class Population:
    """Handle to a declared population of cores."""

    name: str
    index: int
    n_cores: int
    gid_lo: int = -1  #: assigned at build time

    @property
    def gid_hi(self) -> int:
        return self.gid_lo + self.n_cores


@dataclass(frozen=True)
class InputPort:
    """Reserved external-input axons: inject spikes at these addresses."""

    population: str
    gids: np.ndarray
    axons: np.ndarray

    @property
    def width(self) -> int:
        return int(self.gids.size)

    def schedule_for(self, tick_to_lanes: dict[int, np.ndarray]):
        """Translate lane-indexed schedules into (gid, axon, tick) triples.

        ``tick_to_lanes`` maps tick -> indices into this port's lanes
        (0..width).  Yields (gid, axon, tick) suitable for
        :meth:`repro.core.simulator.CompassBase.inject`.
        """
        for tick, lanes in tick_to_lanes.items():
            lanes = np.asarray(lanes, dtype=np.int64)
            if lanes.size and (lanes.min() < 0 or lanes.max() >= self.width):
                raise WiringError("input lane out of range")
            for lane in lanes:
                yield int(self.gids[lane]), int(self.axons[lane]), int(tick)


@dataclass
class _PopulationSpec:
    name: str
    n_cores: int
    neuron: NeuronParameters
    crossbar: str | float | np.ndarray
    axon_types: np.ndarray
    connections_out: list = field(default_factory=list)


class NetworkBuilder:
    """Declarative builder for hand-written TrueNorth applications."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._pops: list[_PopulationSpec] = []
        self._by_name: dict[str, int] = {}
        self._connections: list[tuple[str, str, int, int]] = []
        self._input_requests: list[tuple[str, int]] = []
        self._built = False

    # -- declaration ---------------------------------------------------------

    def add_population(
        self,
        name: str,
        n_cores: int,
        neuron: NeuronParameters | None = None,
        crossbar: str | float | np.ndarray = 0.125,
        axon_types: np.ndarray | tuple[float, ...] | None = None,
    ) -> Population:
        """Declare a population.

        ``crossbar`` is a density float, the string ``"identity"``, or an
        explicit dense (axons, neurons) pattern applied to every core.
        ``axon_types`` is a per-axon type array or a 4-tuple of fractions.
        """
        if name in self._by_name:
            raise WiringError(f"duplicate population {name!r}")
        if n_cores <= 0:
            raise WiringError("population needs at least one core")
        if axon_types is None:
            types = np.zeros(NUM_AXONS, dtype=np.uint8)
        elif isinstance(axon_types, tuple):
            counts = np.floor(np.asarray(axon_types) * NUM_AXONS).astype(int)
            counts[0] += NUM_AXONS - counts.sum()
            types = np.repeat(np.arange(NUM_AXON_TYPES, dtype=np.uint8), counts)
        else:
            types = np.asarray(axon_types, dtype=np.uint8)
        spec = _PopulationSpec(
            name=name,
            n_cores=n_cores,
            neuron=neuron or NeuronParameters(),
            crossbar=crossbar,
            axon_types=types,
        )
        self._by_name[name] = len(self._pops)
        self._pops.append(spec)
        return Population(name=name, index=len(self._pops) - 1, n_cores=n_cores)

    def connect(
        self, src: str | Population, dst: str | Population, count: int, delay: int = 1
    ) -> None:
        """Wire ``count`` neuron→axon connections, round-robin both ends."""
        src_name = src if isinstance(src, str) else src.name
        dst_name = dst if isinstance(dst, str) else dst.name
        for name in (src_name, dst_name):
            if name not in self._by_name:
                raise WiringError(f"unknown population {name!r}")
        if count <= 0:
            raise WiringError("count must be positive")
        if not 1 <= delay <= MAX_DELAY:
            raise WiringError(f"delay out of range [1, {MAX_DELAY}]")
        self._connections.append((src_name, dst_name, count, delay))

    def reserve_inputs(self, pop: str | Population, width: int) -> int:
        """Reserve ``width`` external-input axons on a population.

        Returns the request id used to retrieve the port after build.
        """
        name = pop if isinstance(pop, str) else pop.name
        if name not in self._by_name:
            raise WiringError(f"unknown population {name!r}")
        if width <= 0:
            raise WiringError("width must be positive")
        self._input_requests.append((name, width))
        return len(self._input_requests) - 1

    # -- build -----------------------------------------------------------------

    def build(self) -> tuple[CoreNetwork, dict[str, Population], list[InputPort]]:
        """Materialise the explicit network.

        Returns (network, populations-by-name with gid ranges, input ports
        in reservation order).
        """
        if self._built:
            raise WiringError("builder already consumed")
        self._built = True

        total = sum(p.n_cores for p in self._pops)
        net = CoreNetwork(total, seed=self.seed)
        ranges: dict[str, tuple[int, int]] = {}
        cursor = 0
        for spec in self._pops:
            lo, hi = cursor, cursor + spec.n_cores
            ranges[spec.name] = (lo, hi)
            cursor = hi
            net.neuron_params.set_neuron(slice(lo, hi), slice(None), spec.neuron)
            net.axon_types[lo:hi] = spec.axon_types[None, :]
            self._install_crossbars(net, spec, lo, hi)

        axon_alloc = {
            p.name: AxonAllocator(ranges[p.name][0], p.n_cores, NUM_AXONS)
            for p in self._pops
        }
        neuron_alloc = {
            p.name: NeuronAllocator(ranges[p.name][0], p.n_cores, NUM_NEURONS)
            for p in self._pops
        }

        # External inputs claim axons before internal wiring so ports get
        # stable, low addresses.
        ports: list[InputPort] = []
        for name, width in self._input_requests:
            gids, axons = axon_alloc[name].allocate(width)
            ports.append(InputPort(population=name, gids=gids, axons=axons))

        for conn_index, (src, dst, count, delay) in enumerate(self._connections):
            tgt_gids, tgt_axons = axon_alloc[dst].allocate(count)
            # Decorrelate the two round-robin sequences so one source
            # core's neurons spread over many target cores (§V-C).
            perm = np.random.default_rng(
                derive_seed(self.seed, conn_index, 0xD1F)
            ).permutation(count)
            tgt_gids, tgt_axons = tgt_gids[perm], tgt_axons[perm]
            src_gids, src_neurons = neuron_alloc[src].allocate(count)
            net.connect_many(src_gids, src_neurons, tgt_gids, tgt_axons, delay)

        net.validate()
        pops = {
            spec.name: Population(
                name=spec.name,
                index=i,
                n_cores=spec.n_cores,
                gid_lo=ranges[spec.name][0],
            )
            for i, spec in enumerate(self._pops)
        }
        return net, pops, ports

    def _install_crossbars(
        self, net: CoreNetwork, spec: _PopulationSpec, lo: int, hi: int
    ) -> None:
        if isinstance(spec.crossbar, str):
            if spec.crossbar != "identity":
                raise WiringError(f"unknown crossbar pattern {spec.crossbar!r}")
            cb = Crossbar.identity()
            for gid in range(lo, hi):
                net.set_crossbar(gid, cb)
        elif isinstance(spec.crossbar, float):
            rng = np.random.default_rng(derive_seed(self.seed, lo, 0xB11D))
            for gid in range(lo, hi):
                net.set_crossbar(gid, Crossbar.random(rng, spec.crossbar))
        else:
            cb = Crossbar.from_dense(np.asarray(spec.crossbar))
            for gid in range(lo, hi):
                net.set_crossbar(gid, cb)
