#!/usr/bin/env python
"""Visual attention (§I: "attention mechanisms").

A one-core saliency map over a 16×16 retina with centre-surround
antagonism selects the most salient 4×4 patch.  The demo drops a bright
object into a noisy scene at several positions and shows the attended
patch tracking it.

Run:  python examples/visual_attention.py
"""

import numpy as np

from repro.apps.attention import GRID, SaliencyAttention, scene_with_object
from repro.perf.report import format_table


def show(img: np.ndarray, attended: tuple[int, int]) -> str:
    y0, x0, y1, x1 = SaliencyAttention.patch_bounds(*attended)
    lines = []
    for y in range(img.shape[0]):
        row = ""
        for x in range(img.shape[1]):
            inside = y0 <= y < y1 and x0 <= x < x1
            ch = "#" if img[y, x] else "."
            row += ch.upper() if inside and img[y, x] else ("+" if inside else ch)
        lines.append("  " + row)
    return "\n".join(lines)


def main() -> None:
    attention = SaliencyAttention(surround_inhibition=True)
    print("saliency attention: 16x16 retina, 4x4 patch grid, one core\n")

    rows = []
    for pos, noise, seed in [((0, 0), 0.05, 1), ((2, 3), 0.08, 2), ((3, 1), 0.10, 3)]:
        img = scene_with_object(*pos, noise=noise, seed=seed)
        attended = attention.attend(img)
        rows.append((str(pos), f"{noise:.0%}", str(attended), pos == attended))
    print(
        format_table(
            ["object_at", "noise", "attended", "correct"],
            rows,
            title="attended patch vs object position",
        )
    )

    img = scene_with_object(2, 3, noise=0.08, seed=2)
    attended = attention.attend(img)
    print(f"\nscene (object at patch (2,3); attended patch boxed with '+'):\n")
    print(show(img, attended))

    sal = attention.saliency_map(img)
    print("\nsaliency map (spike counts per patch):")
    for r in range(GRID):
        print("   " + " ".join(f"{sal[r, c]:3d}" for c in range(GRID)))


if __name__ == "__main__":
    main()
