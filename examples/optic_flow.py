#!/usr/bin/env python
"""Optic flow / motion detection on one TrueNorth core (§I application
list), built from the architecture's axonal delays.

A Reichardt detector correlates each pixel with a delayed copy of its
neighbour: the sign of the delay asymmetry makes neurons directionally
selective.  The demo sweeps bars moving in both directions and prints the
detector's votes.

Run:  python examples/optic_flow.py
"""

from repro.apps.opticflow import MotionDetector1D, moving_bar
from repro.perf.report import format_table


def main() -> None:
    n_pixels = 24
    det = MotionDetector1D(n_pixels=n_pixels, delay=1)
    print(f"1-D Reichardt detector: {n_pixels} pixels, delay 1 tick, "
          f"one TrueNorth core\n")

    rows = []
    for direction in ("right", "left"):
        for speed in (1, 2):
            frames = moving_bar(n_pixels, ticks=20, direction=direction, speed=speed)
            detector = MotionDetector1D(n_pixels, delay=1)
            raster = detector.present(frames)
            right, left = detector.direction_votes(raster)
            verdict = detector.detect(frames)
            rows.append((direction, speed, right, left, verdict))
    print(
        format_table(
            ["stimulus", "speed", "right_votes", "left_votes", "detected"],
            rows,
            title="moving-bar sweep",
        )
    )

    # Static control.
    import numpy as np

    static = np.zeros((20, n_pixels), dtype=bool)
    static[:, 5] = True  # a bright but motionless pixel
    control = MotionDetector1D(n_pixels, delay=1)
    print(f"\nstatic stimulus detected as: {control.detect(static)!r}")


if __name__ == "__main__":
    main()
