#!/usr/bin/env python
"""Regression-testing workflow (§I use-case (a)): checkpoint and resume.

Runs a model halfway, checkpoints the complete dynamic state (membrane
potentials, PRNG streams, in-flight axon-buffer spikes), restores it into
a fresh simulator, and verifies the continuation is bit-exact against an
uninterrupted reference run.

Run:  python examples/checkpoint_resume.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import Compass, build_quickstart_network
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.config import CompassConfig

TICKS = 120
SPLIT = 60


def main() -> None:
    net = build_quickstart_network(n_cores=6, seed=9)

    reference = Compass(net, CompassConfig(n_processes=3, record_spikes=True))
    reference.run(TICKS)
    print(f"reference run: {reference.metrics.total_fired} spikes over {TICKS} ticks")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "halfway.npz"
        first = Compass(net, CompassConfig(n_processes=3))
        first.run(SPLIT)
        save_checkpoint(first, path)
        print(f"checkpointed at tick {SPLIT}: {path.stat().st_size} bytes")

        resumed = Compass(net, CompassConfig(n_processes=3, record_spikes=True))
        load_checkpoint(resumed, path)
        resumed.run(TICKS - SPLIT)
        print(f"resumed run completed at tick {resumed.tick}")

        t_ref, g_ref, n_ref = reference.recorder.to_arrays()
        sel = t_ref >= SPLIT
        t_res, g_res, n_res = resumed.recorder.to_arrays()
        exact = (
            np.array_equal(t_ref[sel], t_res)
            and np.array_equal(g_ref[sel], g_res)
            and np.array_equal(n_ref[sel], n_res)
        )
        print(f"bit-exact continuation: {'OK' if exact else 'FAIL'}")
        assert exact


if __name__ == "__main__":
    main()
