#!/usr/bin/env python
"""Multi-modal sensor integration (§I: "multi-modal image-audio
classification", "sensor integration").

A visual template classifier and an auditory signature classifier — each
a bank of TrueNorth cores — contribute evidence spikes per class; fusion
sums the evidence.  The demo corrupts one modality at a time and shows
fusion degrading gracefully where single modalities fail.

Run:  python examples/sensor_integration.py
"""

import numpy as np

from repro.apps.classify import DIGIT_GLYPHS, noisy_glyph
from repro.apps.integration import MultiModalClassifier
from repro.perf.report import format_table


def corrupt_spectrum(spec: np.ndarray, flips: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    out = spec.copy()
    idx = rng.choice(out.size, size=flips, replace=False)
    out[idx] = ~out[idx]
    return out


def main() -> None:
    fused = MultiModalClassifier(seed=3)
    labels = sorted(DIGIT_GLYPHS)
    print(f"classes: {labels}; one visual core + one audio core per class\n")

    rows = []
    for img_flips, spec_flips in [(0, 0), (12, 0), (0, 24), (12, 24), (20, 8)]:
        v_ok = a_ok = f_ok = 0
        cases = 0
        for label in labels:
            for seed in range(3):
                _, clean_spec = fused.sample_for(label)
                img = noisy_glyph(label, flips=img_flips, seed=seed)
                spec = corrupt_spectrum(clean_spec, spec_flips, seed)
                v_ok += fused.classify(image=img) == label
                a_ok += fused.classify(spectrum=spec) == label
                f_ok += fused.classify(image=img, spectrum=spec) == label
                cases += 1
        rows.append(
            (
                f"{img_flips}px",
                f"{spec_flips}bins",
                f"{v_ok/cases:.0%}",
                f"{a_ok/cases:.0%}",
                f"{f_ok/cases:.0%}",
            )
        )
    print(
        format_table(
            ["image_noise", "audio_noise", "vision_only", "audio_only", "fused"],
            rows,
            title="accuracy under modality corruption (15 samples per row)",
        )
    )
    print("\nfusion tracks the better modality and exceeds both under "
          "moderate noise in each.")


if __name__ == "__main__":
    main()
