#!/usr/bin/env python
"""Quickstart: build a small TrueNorth network and simulate it.

Builds the 4-core self-driving ring network, runs it on the Compass
simulator partitioned over two (virtual) MPI processes, and prints spike
statistics plus a small ASCII raster of core 0.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Compass, build_quickstart_network
from repro.apps.decoders import raster_of_core
from repro.core.config import CompassConfig

TICKS = 200


def main() -> None:
    net = build_quickstart_network(n_cores=4, seed=42)
    print(f"network: {net.n_cores} cores, {net.n_neurons} neurons, "
          f"{net.synapse_count} programmed synapses")

    sim = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
    result = sim.run(TICKS)

    print(f"simulated {TICKS} ticks on {sim.config.n_processes} processes")
    print(f"total spikes: {result.total_spikes}")
    print(f"mean rate:    {result.mean_rate_hz:.1f} Hz")
    print(f"MPI messages: {sim.metrics.total_messages} "
          f"({sim.metrics.messages_per_tick():.1f}/tick, aggregated)")
    print(f"white-matter spikes: {sim.metrics.total_remote_spikes}")

    # ASCII raster: first 32 neurons of core 0 over the last 60 ticks.
    raster = raster_of_core(result.spikes, gid=0, ticks=TICKS, n_neurons=256)
    window = raster[-60:, :32]
    print("\nraster (core 0, neurons 0-31, last 60 ticks; time ->)")
    for j in range(32):
        row = "".join("|" if window[t, j] else "." for t in range(60))
        if "|" in row:
            print(f"  n{j:02d} {row}")

    # Determinism check: same network, different partitioning.
    sim2 = Compass(net, CompassConfig(n_processes=4, record_spikes=True))
    sim2.run(TICKS)
    same = all(
        np.array_equal(a, b)
        for a, b in zip(result.spikes.to_arrays(), sim2.recorder.to_arrays())
    )
    print(f"\npartition invariance (2 vs 4 processes): {'OK' if same else 'FAIL'}")


if __name__ == "__main__":
    main()
