#!/usr/bin/env python
"""Spatio-temporal feature extraction (§I application list).

A liquid-state machine: temporal spike patterns (rising, falling, steady
sweeps with identical total energy) drive a recurrent TrueNorth reservoir
core; a ridge readout over time-binned reservoir spike counts classifies
the pattern family.  The demo reports accuracy and contrasts it against a
readout over the raw inputs' *total counts* (which cannot separate the
classes by construction).

Run:  python examples/feature_extraction.py
"""

import numpy as np

from repro.apps.reservoir import (
    RidgeReadout,
    SpikingReservoir,
    lsm_experiment,
    temporal_pattern,
)
from repro.perf.report import format_table

KINDS = ("rising", "falling", "steady")


def baseline_accuracy(seed: int = 1, per_class: int = 8, ticks: int = 24) -> float:
    """Readout over total per-lane counts only (no temporal features)."""
    feats, labels = [], []
    for ci, kind in enumerate(KINDS):
        for s in range(per_class):
            stream = temporal_pattern(kind, 16, ticks, seed=seed * 1000 + ci * 100 + s)
            feats.append(stream.sum(axis=0).astype(float))
            labels.append(ci)
    feats = np.array(feats)
    labels = np.array(labels)
    train = np.arange(len(labels)) % 4 != 0
    readout = RidgeReadout(alpha=5.0).fit(feats[train], labels[train])
    pred = readout.predict(feats[~train])
    return float((pred == labels[~train]).mean())


def main() -> None:
    print("liquid-state machine on one recurrent TrueNorth core\n")
    print("pattern families (equal total energy, different temporal shape):")
    for kind in KINDS:
        stream = temporal_pattern(kind, 16, 24, seed=7)
        art = ["".join("#" if stream[t, lane] else "." for t in range(24))
               for lane in range(0, 16, 4)]
        print(f"  {kind:8s} " + art[0])
        for row in art[1:]:
            print("           " + row)
        print()

    lsm_acc = lsm_experiment(train_per_class=6, test_per_class=3, ticks=24, seed=1)
    base_acc = baseline_accuracy(seed=1)
    print(
        format_table(
            ["readout", "features", "accuracy"],
            [
                ("ridge over raw counts", "16 totals (no time)", f"{base_acc:.0%}"),
                ("ridge over liquid state", "time-binned reservoir spikes", f"{lsm_acc:.0%}"),
            ],
            title="3-class temporal pattern classification (chance 33%)",
        )
    )
    print("\nthe reservoir's transient dynamics encode *when* energy arrived,"
          "\nwhich the count baseline cannot represent.")


if __name__ == "__main__":
    main()
