#!/usr/bin/env python
"""PGAS vs MPI (§VII): functional equivalence plus the Fig 7 reproduction.

Part 1 runs the *same* network on both communication backends and checks
the spike rasters are identical — the property (§VII-A) that makes
one-sided communication legal.

Part 2 evaluates the calibrated Blue Gene/P model to regenerate Fig 7:
real-time simulation of 81K TrueNorth cores, strong-scaled over 1-4 racks,
best thread configuration per point.

Run:  python examples/pgas_vs_mpi.py
"""

import numpy as np

from repro import Compass, PgasCompass, build_quickstart_network
from repro.core.config import CompassConfig
from repro.perf.realtime import max_realtime_cores, realtime_series
from repro.perf.report import format_table


def functional_equivalence() -> None:
    net = build_quickstart_network(n_cores=8, seed=3)
    mpi = Compass(net, CompassConfig(n_processes=4, record_spikes=True))
    pgas = PgasCompass(net, CompassConfig(n_processes=4, record_spikes=True))
    mpi.run(100)
    pgas.run(100)
    same = all(
        np.array_equal(a, b)
        for a, b in zip(mpi.recorder.to_arrays(), pgas.recorder.to_arrays())
    )
    print("functional equivalence (identical rasters): "
          f"{'OK' if same else 'FAIL'}")
    print(f"  MPI backend:  {mpi.metrics.total_messages} messages, "
          f"{mpi.cluster.total_counters().reduce_scatters} reduce-scatters")
    print(f"  PGAS backend: {pgas.metrics.total_messages} one-sided puts, "
          f"{pgas.cluster.epoch} barriers")


def figure7() -> None:
    print("\nFig 7 reproduction: 81K cores, 1000 ticks, Blue Gene/P")
    rows = []
    for p in realtime_series():
        rows.append(
            (
                p.backend.upper(),
                f"{p.racks:g}",
                p.cpus,
                f"{p.procs_per_node}x{p.threads_per_proc}",
                round(p.seconds, 2),
                "yes" if p.realtime else "no",
            )
        )
    print(
        format_table(
            ["impl", "racks", "cpus", "cfg", "seconds", "real-time"],
            rows,
            title="(paper: PGAS 1.0 s at 4 racks; MPI 2.1x slower)",
        )
    )
    print(f"\nreal-time frontier at 4 racks: "
          f"PGAS {max_realtime_cores('pgas', 4)} cores, "
          f"MPI {max_realtime_cores('mpi', 4)} cores "
          f"(paper: 81K under PGAS)")


if __name__ == "__main__":
    functional_equivalence()
    figure7()
