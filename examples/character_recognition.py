#!/usr/bin/env python
"""Character recognition on TrueNorth cores (§I application list).

One core per digit class holds its template in the synaptic crossbar;
glyph pixels are injected as spikes; the class whose evidence neurons fire
most wins.  The demo measures accuracy under increasing pixel noise.

Run:  python examples/character_recognition.py
"""

from repro.apps.classify import DIGIT_GLYPHS, TemplateClassifier, glyph_to_array, noisy_glyph
from repro.perf.report import format_table


def main() -> None:
    classifier = TemplateClassifier(DIGIT_GLYPHS)
    print(f"classifier: {len(DIGIT_GLYPHS)} classes, one TrueNorth core each\n")

    # Show one glyph for orientation.
    print("template for digit 3:")
    for row in DIGIT_GLYPHS[3]:
        print("   " + row)
    print()

    rows = []
    for flips in (0, 2, 4, 6, 8, 12):
        samples = [
            (noisy_glyph(label, flips=flips, seed=seed), label)
            for label in DIGIT_GLYPHS
            for seed in range(5)
        ]
        acc = classifier.accuracy(samples)
        rows.append((flips, f"{flips / 64:.0%}", f"{acc:.0%}"))
    print(
        format_table(
            ["pixels_flipped", "noise", "accuracy"],
            rows,
            title="accuracy vs pixel noise (25 samples per row)",
        )
    )

    # Single classification walk-through.
    img = noisy_glyph(2, flips=4, seed=1)
    predicted = classifier.classify(img)
    print("\nnoisy digit 2 presented:")
    arr = img
    for r in range(8):
        print("   " + "".join("#" if arr[r, c] else "." for c in range(8)))
    print(f"predicted: {predicted}")
    clean = glyph_to_array(DIGIT_GLYPHS[predicted])
    overlap = (arr & clean).sum() / clean.sum()
    print(f"template overlap: {overlap:.0%}")


if __name__ == "__main__":
    main()
