#!/usr/bin/env python
"""CoCoMac macaque network demo (§V): compile and simulate a scaled-down
macaque brain model and report what the paper's evaluation reports.

Pipeline exercised end to end:
  synthetic CoCoMac database (383 regions, 6602 edges)
  -> reduction to 102 regions / 77 reporting connections
  -> synthetic Paxinos atlas volumes with median imputation
  -> IPFP-balanced connection matrix (realizability)
  -> Parallel Compass Compiler -> explicit 256-core TrueNorth network
  -> Compass run with per-phase simulated Blue Gene/Q timings.

Run:  python examples/macaque_demo.py
"""

import numpy as np

from repro.cocomac.model import build_macaque_model
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.perf.report import format_table
from repro.util.units import fmt_count

TOTAL_CORES = 256
TICKS = 500
PROCESSES = 8


def main() -> None:
    print("building + compiling macaque model ...")
    model = build_macaque_model(total_cores=TOTAL_CORES, seed=7)
    cm = model.compiled
    net = cm.network
    print(
        f"  {model.n_regions} regions, {net.n_cores} cores, "
        f"{fmt_count(net.n_neurons)} neurons, "
        f"{fmt_count(net.connected_neuron_count)} connections "
        f"({model.white_matter_fraction:.0%} white matter)"
    )
    print(
        f"  PCC: {cm.metrics.wall_seconds:.2f}s, "
        f"{cm.metrics.exchange_messages} wiring exchanges"
    )

    cfg = CompassConfig(
        n_processes=PROCESSES, threads_per_process=4, record_spikes=True,
    )
    sim = Compass(net, cfg)
    print(f"\nsimulating {TICKS} ticks on {PROCESSES} processes ...")
    result = sim.run(TICKS)

    m = sim.metrics
    print(f"  total spikes:        {fmt_count(result.total_spikes)}")
    print(f"  mean rate:           {result.mean_rate_hz:.1f} Hz "
          f"(paper: 8.1 Hz at full scale)")
    print(f"  messages/tick:       {m.messages_per_tick():.1f} (aggregated)")
    print(f"  white spikes/tick:   {m.spikes_per_tick():.1f}")
    print(f"  host wall time:      {m.host.total:.2f} s")

    # Region-level activity table (top 10 by spikes).
    t, g, n = result.spikes.to_arrays()
    rows = []
    for name, (lo, hi) in cm.region_ranges.items():
        spikes = int(((g >= lo) & (g < hi)).sum())
        neurons = (hi - lo) * 256
        rate = spikes / neurons / (TICKS / 1000)
        rows.append((name, hi - lo, spikes, round(rate, 1)))
    rows.sort(key=lambda r: -r[2])
    print()
    print(
        format_table(
            ["region", "cores", "spikes", "rate_hz"],
            rows[:10],
            title="most active regions",
        )
    )

    # Fig 3 flavour: volume vs allocated cores for a sample of regions.
    vols = model.volumes.volume_array(model.region_names)
    order = np.argsort(-vols)[:8]
    rows = [
        (model.region_names[i], round(float(vols[i]), 2), int(model.cores[i]))
        for i in order
    ]
    print()
    print(
        format_table(
            ["region", "atlas_volume", "cores_allocated"],
            rows,
            title="volume-proportional allocation (largest regions)",
        )
    )


if __name__ == "__main__":
    main()
