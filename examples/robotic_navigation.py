#!/usr/bin/env python
"""Closed-loop robotic navigation (§I application list).

A spiking Braitenberg controller on a single TrueNorth core steers an
agent through an obstacle slalom: proximity sensors are rate-coded into
spikes, the steering winner-take-all picks {left, straight, right}, and
the winner moves the agent.  The whole loop is re-simulated every world
step — the structure of a real-time Compass deployment.

Run:  python examples/robotic_navigation.py
"""

from repro.apps.navigation import GridWorld, navigate, render


def main() -> None:
    world = GridWorld.corridor(length=24, width=7)
    print("corridor world ('#' obstacle, '*' path, '>' agent):\n")
    print(render(world))
    print("\nnavigating ...\n")

    world = navigate(world, max_steps=80, seed=3)
    print(render(world))
    print(
        f"\nsteps: {world.steps}  progress: {world.progress} columns  "
        f"collisions: {world.collisions}"
    )
    if world.x >= world.grid.shape[1] - 2:
        print("reached the end of the corridor.")


if __name__ == "__main__":
    main()
